package flow

import (
	"fmt"
	"hash/maphash"
	"sync"
	"time"

	"rankjoin/internal/obs"
)

// KV is a key-value record, the unit of all wide (shuffling)
// transformations.
type KV[K comparable, V any] struct {
	K K
	V V
}

// hashSeed is shared by every shuffle in the process so that equal keys
// always hash identically: two datasets shuffled to the same partition
// count are automatically co-partitioned, which CoGroup and Join rely
// on.
var hashSeed = maphash.MakeSeed()

func partitionOf[K comparable](key K, parts int) int {
	return int(maphash.Comparable(hashSeed, key) % uint64(parts))
}

// shuffleState materializes a hash-partitioned exchange exactly once.
type shuffleState[T any] struct {
	once    sync.Once
	err     error
	buckets [][]T
	spilled []string // spill file per partition, "" if in memory
	// id is the collective id of this shuffle, assigned at
	// graph-construction time; zero outside distributed mode.
	id int64
}

// runShuffle evaluates all source partitions of d, routing each record
// to its destination bucket by hash of the key. Scatter and gather are
// fused: a counting pass tags every record with its destination, the
// destination buckets are then allocated at their exact final size, and
// each source writes its records straight into a disjoint window of the
// target bucket. Every record is copied exactly once and no
// intermediate per-(source, destination) bucket matrix is retained —
// roughly halving both the copies and the peak memory of the
// two-barrier scatter-then-gather formulation. Oversized buckets are
// spilled when the context has spilling enabled.
//
// Bucket contents are deterministic: records land in source-partition
// order, each source's records in their original order.
func runShuffle[K comparable, V any](d *Dataset[KV[K, V]], parts int, st *shuffleState[KV[K, V]]) {
	ctx := d.ctx
	start := time.Now()
	defer func() { ctx.metrics.ShuffleNanos.Add(int64(time.Since(start))) }()

	if ctx.distributed() {
		runShuffleDistributed(d, parts, st)
		return
	}

	// The shuffle span attaches to the driver's current scope — the
	// pipeline phase whose action forced this materialization. All
	// tracing below is nil-safe and free when no tracer is attached.
	sp := ctx.Tracer().StartTask("shuffle",
		obs.Int("sources", int64(d.parts)), obs.Int("partitions", int64(parts)))
	defer sp.End()

	// Pass 1 — scatter plan: materialize each source once, tag every
	// record with its destination (so the hash is computed once) and
	// count per-destination sizes. Records are not copied here.
	ins := make([][]KV[K, V], d.parts)
	tags := make([][]uint32, d.parts)
	counts := make([][]int, d.parts)
	scan := sp.StartChild("shuffle.scan")
	st.err = ctx.parallelDo(d.parts, func(src int) error {
		tsp := scan.StartTask("scan", obs.Int("partition", int64(src)))
		defer tsp.End()
		in, err := d.partition(src)
		if err != nil {
			return err
		}
		tag := make([]uint32, len(in))
		cnt := make([]int, parts)
		for i, kv := range in {
			dst := partitionOf(kv.K, parts)
			tag[i] = uint32(dst)
			cnt[dst]++
		}
		ctx.metrics.ShuffleRecords.Add(int64(len(in)))
		tsp.SetInt("records", int64(len(in)))
		ins[src], tags[src], counts[src] = in, tag, cnt
		return nil
	})
	scan.End()
	if st.err != nil {
		return
	}

	// Exact-size destination buckets, with a disjoint write window per
	// (source, destination) so pass 2 needs no locks.
	offsets := make([][]int, d.parts)
	sizes := make([]int, parts)
	for src := range counts {
		off := make([]int, parts)
		for dst, c := range counts[src] {
			off[dst] = sizes[dst]
			sizes[dst] += c
		}
		offsets[src] = off
	}
	buckets := make([][]KV[K, V], parts)
	partHist := ctx.Histogram("shuffle/partition_records")
	var total int64
	for dst, n := range sizes {
		buckets[dst] = make([]KV[K, V], n)
		ctx.metrics.observePartitionSize(int64(n))
		partHist.Observe(int64(n))
		total += int64(n)
	}
	sp.SetInt("records", total)

	// Pass 2 — fused scatter+gather: each source writes its records
	// into their final position, then releases its input.
	write := sp.StartChild("shuffle.write")
	st.err = ctx.parallelDo(d.parts, func(src int) error {
		tsp := write.StartTask("write", obs.Int("partition", int64(src)))
		defer tsp.End()
		off := offsets[src]
		tag := tags[src]
		for i, kv := range ins[src] {
			dst := tag[i]
			buckets[dst][off[dst]] = kv
			off[dst]++
		}
		ins[src], tags[src] = nil, nil
		return nil
	})
	write.End()
	if st.err != nil {
		return
	}
	st.buckets = buckets
	st.spilled = make([]string, parts)
	if ctx.spill == nil {
		return
	}
	spillSpan := sp.StartChild("shuffle.spill")
	defer spillSpan.End()
	st.err = ctx.parallelDo(parts, func(dst int) error {
		if sizes[dst] <= ctx.spill.threshold {
			return nil
		}
		tsp := spillSpan.StartTask("spill",
			obs.Int("partition", int64(dst)), obs.Int("records", int64(sizes[dst])))
		defer tsp.End()
		path, err := spillWrite(ctx.spill, buckets[dst])
		if err != nil {
			return err
		}
		st.spilled[dst] = path
		buckets[dst] = nil // st.buckets aliases this; free the memory
		return nil
	})
}

// PartitionByKey redistributes records so that equal keys land in the
// same partition — the raw shuffle every wide transformation builds on.
// A non-positive parts uses the context default.
func PartitionByKey[K comparable, V any](d *Dataset[KV[K, V]], parts int) *Dataset[KV[K, V]] {
	if parts <= 0 {
		parts = d.ctx.cfg.DefaultPartitions
	}
	// In distributed mode every worker must own at least one output
	// partition of every shuffle: ownership is what makes each worker
	// reach the shuffle's sync.Once and join its Alltoall. Results are
	// partition-count invariant (property-tested), so the clamp never
	// changes the answer.
	st := &shuffleState[KV[K, V]]{}
	if d.ctx.distributed() {
		if _, world := d.ctx.world(); parts < world {
			parts = world
		}
		st.id = d.ctx.nextCollective()
	}
	return &Dataset[KV[K, V]]{
		ctx:   d.ctx,
		parts: parts,
		compute: func(p int) ([]KV[K, V], error) {
			st.once.Do(func() { runShuffle(d, parts, st) })
			if st.err != nil {
				return nil, st.err
			}
			if self, world := d.ctx.world(); world > 1 && p%world != self {
				return nil, fmt.Errorf("flow: shuffle partition %d is owned by worker %d, not %d — a distributed pipeline read a non-owned partition", p, p%world, self)
			}
			if path := st.spilled[p]; path != "" {
				return spillRead[KV[K, V]](d.ctx.spill, path)
			}
			return st.buckets[p], nil
		},
	}
}

// GroupByKey shuffles and gathers all values of a key into one record.
// Like Spark's groupByKey it materializes each group; prefer
// ReduceByKey when a combiner exists.
func GroupByKey[K comparable, V any](d *Dataset[KV[K, V]], parts int) *Dataset[KV[K, []V]] {
	sh := PartitionByKey(d, parts)
	return MapPartitions(sh, func(_ int, in []KV[K, V]) ([]KV[K, []V], error) {
		groups := make(map[K][]V)
		var order []K
		for _, kv := range in {
			if _, seen := groups[kv.K]; !seen {
				order = append(order, kv.K)
			}
			groups[kv.K] = append(groups[kv.K], kv.V)
		}
		out := make([]KV[K, []V], 0, len(order))
		for _, k := range order {
			out = append(out, KV[K, []V]{K: k, V: groups[k]})
		}
		return out, nil
	})
}

// ReduceByKey merges all values of a key with an associative,
// commutative function, combining map-side before the shuffle (Spark's
// reduceByKey).
func ReduceByKey[K comparable, V any](d *Dataset[KV[K, V]], parts int, merge func(V, V) V) *Dataset[KV[K, V]] {
	combine := func(_ int, in []KV[K, V]) ([]KV[K, V], error) {
		acc := make(map[K]V)
		var order []K
		for _, kv := range in {
			if cur, ok := acc[kv.K]; ok {
				acc[kv.K] = merge(cur, kv.V)
			} else {
				acc[kv.K] = kv.V
				order = append(order, kv.K)
			}
		}
		out := make([]KV[K, V], 0, len(order))
		for _, k := range order {
			out = append(out, KV[K, V]{K: k, V: acc[k]})
		}
		return out, nil
	}
	pre := MapPartitions(d, combine)  // map-side combine
	sh := PartitionByKey(pre, parts)  // exchange
	return MapPartitions(sh, combine) // final merge
}

// CoGrouped carries, for one key, the values from both sides of a
// CoGroup.
type CoGrouped[V, W any] struct {
	Left  []V
	Right []W
}

// CoGroup gathers, per key, all values from both datasets. The two
// inputs are shuffled to the same partition count with the shared hash
// seed, so partitions can be zipped pairwise.
func CoGroup[K comparable, V, W any](a *Dataset[KV[K, V]], b *Dataset[KV[K, W]], parts int) *Dataset[KV[K, CoGrouped[V, W]]] {
	if a.ctx != b.ctx {
		panic("flow: cogroup across contexts")
	}
	if parts <= 0 {
		parts = a.ctx.cfg.DefaultPartitions
	}
	if a.ctx.distributed() {
		// Match PartitionByKey's world-size clamp so the zipped output
		// partition count below agrees with both inner shuffles.
		if _, world := a.ctx.world(); parts < world {
			parts = world
		}
	}
	sa := PartitionByKey(a, parts)
	sb := PartitionByKey(b, parts)
	return &Dataset[KV[K, CoGrouped[V, W]]]{
		ctx:   a.ctx,
		parts: parts,
		compute: func(p int) ([]KV[K, CoGrouped[V, W]], error) {
			la, err := sa.partition(p)
			if err != nil {
				return nil, err
			}
			lb, err := sb.partition(p)
			if err != nil {
				return nil, err
			}
			groups := make(map[K]*CoGrouped[V, W])
			var order []K
			get := func(k K) *CoGrouped[V, W] {
				g, ok := groups[k]
				if !ok {
					g = &CoGrouped[V, W]{}
					groups[k] = g
					order = append(order, k)
				}
				return g
			}
			for _, kv := range la {
				g := get(kv.K)
				g.Left = append(g.Left, kv.V)
			}
			for _, kv := range lb {
				g := get(kv.K)
				g.Right = append(g.Right, kv.V)
			}
			out := make([]KV[K, CoGrouped[V, W]], 0, len(order))
			for _, k := range order {
				out = append(out, KV[K, CoGrouped[V, W]]{K: k, V: *groups[k]})
			}
			return out, nil
		},
	}
}

// Joined is one row of an inner join: a key's pair of values.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// Join computes the inner equi-join of the two datasets on their keys
// (Spark's rdd.join), emitting the cross product of matching values.
func Join[K comparable, V, W any](a *Dataset[KV[K, V]], b *Dataset[KV[K, W]], parts int) *Dataset[KV[K, Joined[V, W]]] {
	cg := CoGroup(a, b, parts)
	return FlatMap(cg, func(kv KV[K, CoGrouped[V, W]]) []KV[K, Joined[V, W]] {
		if len(kv.V.Left) == 0 || len(kv.V.Right) == 0 {
			return nil
		}
		out := make([]KV[K, Joined[V, W]], 0, len(kv.V.Left)*len(kv.V.Right))
		for _, v := range kv.V.Left {
			for _, w := range kv.V.Right {
				out = append(out, KV[K, Joined[V, W]]{K: kv.K, V: Joined[V, W]{Left: v, Right: w}})
			}
		}
		return out
	})
}

// dedupFirstBy keeps the first element per key, preserving order — the
// shared combiner of Distinct and DistinctBy.
func dedupFirstBy[T any, K comparable](in []T, key func(T) K) []T {
	seen := make(map[K]struct{}, len(in))
	out := make([]T, 0, len(in))
	for _, v := range in {
		k := key(v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Distinct removes duplicate elements via a shuffle — the final
// deduplication stage of every algorithm in the paper. Duplicates are
// combined map-side (within each source partition, before the
// exchange), so on duplicate-heavy result sets the shuffle moves only
// one record per distinct value per source partition.
func Distinct[T comparable](d *Dataset[T], parts int) *Dataset[T] {
	pre := MapPartitions(d, func(_ int, in []T) ([]T, error) {
		return dedupFirstBy(in, func(v T) T { return v }), nil
	})
	keyed := Map(pre, func(v T) KV[T, struct{}] { return KV[T, struct{}]{K: v} })
	sh := PartitionByKey(keyed, parts)
	return MapPartitions(sh, func(_ int, in []KV[T, struct{}]) ([]T, error) {
		out := dedupFirstBy(in, func(kv KV[T, struct{}]) T { return kv.K })
		vals := make([]T, len(out))
		for i, kv := range out {
			vals[i] = kv.K
		}
		return vals, nil
	})
}

// DistinctBy removes elements with duplicate keys, keeping the first
// occurrence (in source order) of each key. Like Distinct it combines
// map-side before the exchange; because shuffle buckets preserve
// source order, the surviving representative is the same one the
// unfused shuffle kept.
func DistinctBy[T any, K comparable](d *Dataset[T], parts int, key func(T) K) *Dataset[T] {
	pre := MapPartitions(d, func(_ int, in []T) ([]T, error) {
		return dedupFirstBy(in, key), nil
	})
	keyed := Map(pre, func(v T) KV[K, T] { return KV[K, T]{K: key(v), V: v} })
	sh := PartitionByKey(keyed, parts)
	return MapPartitions(sh, func(_ int, in []KV[K, T]) ([]T, error) {
		out := dedupFirstBy(in, func(kv KV[K, T]) K { return kv.K })
		vals := make([]T, len(out))
		for i, kv := range out {
			vals[i] = kv.V
		}
		return vals, nil
	})
}

// MapValues transforms the value of each record, preserving keys and
// partitioning.
func MapValues[K comparable, V, W any](d *Dataset[KV[K, V]], f func(V) W) *Dataset[KV[K, W]] {
	return Map(d, func(kv KV[K, V]) KV[K, W] {
		return KV[K, W]{K: kv.K, V: f(kv.V)}
	})
}

// Keys projects the keys of a keyed dataset.
func Keys[K comparable, V any](d *Dataset[KV[K, V]]) *Dataset[K] {
	return Map(d, func(kv KV[K, V]) K { return kv.K })
}

// Values projects the values of a keyed dataset.
func Values[K comparable, V any](d *Dataset[KV[K, V]]) *Dataset[V] {
	return Map(d, func(kv KV[K, V]) V { return kv.V })
}
