package flow

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// spillManager hands out gob spill files for oversized shuffle buckets
// and removes them when the context closes. It models Spark's
// spill-to-disk behaviour (§4.1 of the paper): instead of pinning every
// shuffle partition in executor memory, buckets beyond the threshold
// round-trip through disk.
type spillManager struct {
	dir       string
	threshold int
	metrics   *Metrics

	seq   atomic.Int64
	mu    sync.Mutex
	files []string
}

func newSpillManager(dir string, threshold int, m *Metrics) *spillManager {
	return &spillManager{dir: dir, threshold: threshold, metrics: m}
}

func (s *spillManager) nextPath() string {
	return filepath.Join(s.dir, fmt.Sprintf("spill-%d.gob", s.seq.Add(1)))
}

func (s *spillManager) register(path string) {
	s.mu.Lock()
	s.files = append(s.files, path)
	s.mu.Unlock()
}

func (s *spillManager) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := os.Remove(f); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	s.files = nil
	return first
}

// spillWrite persists a bucket and returns its file path. It is generic
// so each instantiation encodes the concrete record type; gob handles
// the rest via reflection.
func spillWrite[T any](s *spillManager, bucket []T) (string, error) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return "", fmt.Errorf("flow: spill dir: %w", err)
	}
	path := s.nextPath()
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("flow: create spill: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(bucket); err != nil {
		f.Close()
		return "", fmt.Errorf("flow: encode spill: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("flow: close spill: %w", err)
	}
	s.register(path)
	s.metrics.SpilledRecords.Add(int64(len(bucket)))
	s.metrics.histogram("shuffle/spilled_bucket_records").Observe(int64(len(bucket)))
	return path, nil
}

// spillRead loads a previously spilled bucket.
func spillRead[T any](s *spillManager, path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flow: open spill: %w", err)
	}
	defer f.Close()
	var bucket []T
	if err := gob.NewDecoder(f).Decode(&bucket); err != nil {
		return nil, fmt.Errorf("flow: decode spill: %w", err)
	}
	return bucket, nil
}
