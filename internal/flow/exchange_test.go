package flow

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// testWorld wires N in-process SPMD workers together with one buffered
// channel per (collective, src, dst) triple — the minimal conforming
// Exchanger, used to validate the distributed engine without a network.
type testWorld struct {
	n     int
	mu    sync.Mutex
	boxes map[testSlot]chan []byte
}

type testSlot struct {
	id       int64
	src, dst int
}

func newTestWorld(n int) *testWorld {
	return &testWorld{n: n, boxes: make(map[testSlot]chan []byte)}
}

func (tw *testWorld) box(id int64, src, dst int) chan []byte {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	key := testSlot{id, src, dst}
	ch, ok := tw.boxes[key]
	if !ok {
		ch = make(chan []byte, 1)
		tw.boxes[key] = ch
	}
	return ch
}

func (tw *testWorld) exchanger(self int) Exchanger {
	return &testExchanger{world: tw, self: self}
}

type testExchanger struct {
	world *testWorld
	self  int
}

func (e *testExchanger) World() (int, int) { return e.self, e.world.n }

func (e *testExchanger) Alltoall(id int64, outbound [][]byte) ([][]byte, error) {
	if len(outbound) != e.world.n {
		return nil, fmt.Errorf("outbound size %d != world %d", len(outbound), e.world.n)
	}
	for w := range outbound {
		if w == e.self {
			continue
		}
		e.world.box(id, e.self, w) <- outbound[w]
	}
	inbound := make([][]byte, e.world.n)
	inbound[e.self] = outbound[e.self]
	for w := range inbound {
		if w == e.self {
			continue
		}
		inbound[w] = <-e.world.box(id, w, e.self)
	}
	return inbound, nil
}

// runWorld executes the same driver program on every worker of an
// n-worker world and returns each worker's result.
func runWorld[T any](t *testing.T, n int, driver func(ctx *Context) (T, error)) []T {
	t.Helper()
	tw := newTestWorld(n)
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewContext(Config{Workers: 2, DefaultPartitions: 5, Exchange: tw.exchanger(w)})
			results[w], errs[w] = driver(ctx)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	return results
}

type testPairKey struct{ A, B int64 }

func TestDistributedReduceByKeyMatchesLocal(t *testing.T) {
	data := make([]KV[int, int], 0, 200)
	for i := 0; i < 200; i++ {
		data = append(data, KV[int, int]{K: i % 17, V: i})
	}
	driver := func(ctx *Context) ([]KV[int, int], error) {
		d := Parallelize(ctx, data, 4)
		out, err := ReduceByKey(d, 6, func(a, b int) int { return a + b }).Collect()
		if err != nil {
			return nil, err
		}
		sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
		return out, nil
	}
	local, err := driver(NewContext(Config{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for w, got := range runWorld(t, 3, driver) {
		if !reflect.DeepEqual(got, local) {
			t.Fatalf("worker %d: distributed %v != local %v", w, got, local)
		}
	}
}

func TestDistributedWorkersAgreeWithoutSorting(t *testing.T) {
	// Collect must return the identical slice (same order) on every
	// worker, or SPMD drivers diverge.
	data := make([]KV[int64, int32], 0, 300)
	for i := 0; i < 300; i++ {
		data = append(data, KV[int64, int32]{K: int64(i % 23), V: int32(i)})
	}
	results := runWorld(t, 4, func(ctx *Context) ([]KV[int64, []int32], error) {
		return GroupByKey(Parallelize(ctx, data, 7), 9).Collect()
	})
	for w := 1; w < len(results); w++ {
		if !reflect.DeepEqual(results[w], results[0]) {
			t.Fatalf("worker %d collect order diverges from worker 0", w)
		}
	}
	// And the grouped content matches the local engine, order aside.
	local, err := GroupByKey(Parallelize(NewContext(Config{}), data, 7), 9).Collect()
	if err != nil {
		t.Fatal(err)
	}
	canon := func(in []KV[int64, []int32]) []KV[int64, []int32] {
		out := append([]KV[int64, []int32](nil), in...)
		sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
		for i := range out {
			vs := append([]int32(nil), out[i].V...)
			sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
			out[i].V = vs
		}
		return out
	}
	if !reflect.DeepEqual(canon(results[0]), canon(local)) {
		t.Fatalf("distributed groups != local groups")
	}
}

func TestDistributedJoinUnionDistinct(t *testing.T) {
	// Exercises CoGroup/Join, Union's ownership delegation (a union of
	// two post-shuffle datasets feeding a third shuffle) and struct
	// shuffle keys through the reflection hash.
	left := make([]KV[testPairKey, int], 0, 120)
	right := make([]KV[testPairKey, string], 0, 120)
	for i := 0; i < 120; i++ {
		k := testPairKey{A: int64(i % 11), B: int64(i % 7)}
		left = append(left, KV[testPairKey, int]{K: k, V: i})
		right = append(right, KV[testPairKey, string]{K: k, V: fmt.Sprint(i % 5)})
	}
	driver := func(ctx *Context) ([]string, error) {
		l := Parallelize(ctx, left, 3)
		r := Parallelize(ctx, right, 5)
		j := Join(l, r, 4)
		tagged := Map(j, func(kv KV[testPairKey, Joined[int, string]]) string {
			return fmt.Sprintf("%d/%d:%d:%s", kv.K.A, kv.K.B, kv.V.Left%3, kv.V.Right)
		})
		extra := Map(Parallelize(ctx, left[:40], 2), func(kv KV[testPairKey, int]) string {
			return fmt.Sprintf("x%d/%d", kv.K.A, kv.V%3)
		})
		u := Union(tagged, extra)
		out, err := Distinct(u, 6).Collect()
		if err != nil {
			return nil, err
		}
		sort.Strings(out)
		return out, nil
	}
	local, err := driver(NewContext(Config{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(local) == 0 {
		t.Fatal("empty local result; test is vacuous")
	}
	for w, got := range runWorld(t, 3, driver) {
		if !reflect.DeepEqual(got, local) {
			t.Fatalf("worker %d: distributed result diverges (%d vs %d elems)", w, len(got), len(local))
		}
	}
}

func TestDistributedCountAndReduce(t *testing.T) {
	data := make([]int, 157)
	for i := range data {
		data[i] = i + 1
	}
	type out struct {
		N    int64
		Sum  int
		Have bool
	}
	driver := func(ctx *Context) (out, error) {
		d := Parallelize(ctx, data, 6)
		f := Filter(d, func(v int) bool { return v%2 == 1 })
		n, err := f.Count()
		if err != nil {
			return out{}, err
		}
		sum, have, err := Reduce(f, func(a, b int) int { return a + b })
		if err != nil {
			return out{}, err
		}
		return out{N: n, Sum: sum, Have: have}, nil
	}
	local, err := driver(NewContext(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	for w, got := range runWorld(t, 3, driver) {
		if got != local {
			t.Fatalf("worker %d: %+v != local %+v", w, got, local)
		}
	}
}

func TestDistributedEmptyDataset(t *testing.T) {
	driver := func(ctx *Context) (int64, error) {
		d := Parallelize(ctx, []KV[int, int]{}, 3)
		g := GroupByKey(d, 4)
		if _, err := g.Collect(); err != nil {
			return 0, err
		}
		return g.Count()
	}
	for w, got := range runWorld(t, 3, driver) {
		if got != 0 {
			t.Fatalf("worker %d: count %d on empty dataset", w, got)
		}
	}
}

func TestDistributedShuffleClampsPartitionsToWorld(t *testing.T) {
	// A 2-partition shuffle in a 4-worker world must widen to 4
	// partitions so every worker owns one and joins the exchange;
	// otherwise non-owners would hang forever waiting for frames.
	data := []KV[int, int]{{1, 1}, {2, 2}, {3, 3}}
	results := runWorld(t, 4, func(ctx *Context) (int, error) {
		sh := PartitionByKey(Parallelize(ctx, data, 2), 2)
		if _, err := sh.Collect(); err != nil {
			return 0, err
		}
		return sh.NumPartitions(), nil
	})
	for w, got := range results {
		if got != 4 {
			t.Fatalf("worker %d: partitions %d, want clamp to world size 4", w, got)
		}
	}
}

func TestStableKeyHashFastPathsMatchReflection(t *testing.T) {
	// The type-switch fast paths must agree with what a peer computing
	// the same key through any path gets — they are the same function,
	// but guard the int-width conversions against sign mistakes.
	if stableKeyHash(int32(-5)) != stableKeyHash(int64(-5)) {
		t.Fatal("negative int32 and int64 keys hash differently")
	}
	if stableKeyHash(int(41)) != stableKeyHash(int64(41)) {
		t.Fatal("int and int64 keys hash differently")
	}
	if stableKeyHash(testPairKey{1, 2}) == stableKeyHash(testPairKey{2, 1}) {
		t.Fatal("field order ignored by struct hash")
	}
}

func TestStableKeyHashRejectsReferenceKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pointer shuffle key must panic")
		}
	}()
	v := 5
	stableKeyHash(&v)
}
