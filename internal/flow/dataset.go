package flow

import (
	"fmt"
	"sync"
)

// Dataset is a lazily evaluated, partitioned, immutable collection — the
// engine's RDD. Transformations build new Datasets; nothing executes
// until an action (Collect, Count, Reduce) or a downstream shuffle
// forces materialization. Narrow transformations are pipelined: a chain
// of Map/Filter/FlatMap over one partition runs as a single task
// without intermediate materialization of the whole dataset.
type Dataset[T any] struct {
	ctx     *Context
	parts   int
	compute func(p int) ([]T, error)

	// cache, when non-nil, memoizes computed partitions (RDD.cache()).
	cache *cacheState[T]

	// owner maps a partition index to its ownership token; token mod
	// world size selects the worker responsible for computing that
	// partition in distributed mode. Nil means the identity (partition
	// index itself). Narrow transformations inherit their parent's
	// owner since partitions stay index-aligned; Union delegates to the
	// underlying side so a worker never computes another worker's
	// shuffle bucket; shuffle outputs reset to the identity.
	owner func(p int) int
}

type cacheState[T any] struct {
	once  []sync.Once
	parts [][]T
	errs  []error
}

// Context returns the engine context the dataset is bound to.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// NumPartitions returns the dataset's partition count.
func (d *Dataset[T]) NumPartitions() int { return d.parts }

// Parallelize distributes data over parts partitions (round-robin by
// block) — the engine's entry point for driver-side collections. A
// non-positive parts uses the context default.
func Parallelize[T any](ctx *Context, data []T, parts int) *Dataset[T] {
	if parts <= 0 {
		parts = ctx.cfg.DefaultPartitions
	}
	n := len(data)
	return &Dataset[T]{
		ctx:   ctx,
		parts: parts,
		compute: func(p int) ([]T, error) {
			lo := n * p / parts
			hi := n * (p + 1) / parts
			return data[lo:hi], nil
		},
	}
}

// FromPartitions wraps pre-partitioned data as a dataset.
func FromPartitions[T any](ctx *Context, partitions [][]T) *Dataset[T] {
	return &Dataset[T]{
		ctx:     ctx,
		parts:   len(partitions),
		compute: func(p int) ([]T, error) { return partitions[p], nil },
	}
}

// ownerOf resolves the ownership token of a partition (see the owner
// field).
func (d *Dataset[T]) ownerOf(p int) int {
	if d.owner != nil {
		return d.owner(p)
	}
	return p
}

// ownedPartitions lists the partitions this worker is responsible for
// computing — all of them in a world of one.
func (d *Dataset[T]) ownedPartitions() []int {
	self, world := d.ctx.world()
	ps := make([]int, 0, (d.parts+world-1)/world)
	for p := 0; p < d.parts; p++ {
		if world == 1 || d.ownerOf(p)%world == self {
			ps = append(ps, p)
		}
	}
	return ps
}

// partition evaluates one partition, consulting the cache if enabled.
func (d *Dataset[T]) partition(p int) ([]T, error) {
	if p < 0 || p >= d.parts {
		return nil, fmt.Errorf("flow: partition %d out of range [0,%d)", p, d.parts)
	}
	if c := d.cache; c != nil {
		c.once[p].Do(func() {
			c.parts[p], c.errs[p] = d.compute(p)
		})
		return c.parts[p], c.errs[p]
	}
	return d.compute(p)
}

// Cache returns a dataset whose partitions are computed at most once
// and then served from memory — Spark's rdd.cache(), the mechanism the
// paper's iterative pipeline leans on for intermediate results.
func (d *Dataset[T]) Cache() *Dataset[T] {
	c := &cacheState[T]{
		once:  make([]sync.Once, d.parts),
		parts: make([][]T, d.parts),
		errs:  make([]error, d.parts),
	}
	return &Dataset[T]{
		ctx:     d.ctx,
		parts:   d.parts,
		compute: d.partition,
		cache:   c,
		owner:   d.owner,
	}
}

// Map applies f to every element.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return &Dataset[U]{
		ctx:   d.ctx,
		parts: d.parts,
		owner: d.owner,
		compute: func(p int) ([]U, error) {
			in, err := d.partition(p)
			if err != nil {
				return nil, err
			}
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out, nil
		},
	}
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return &Dataset[U]{
		ctx:   d.ctx,
		parts: d.parts,
		owner: d.owner,
		compute: func(p int) ([]U, error) {
			in, err := d.partition(p)
			if err != nil {
				return nil, err
			}
			var out []U
			for _, v := range in {
				out = append(out, f(v)...)
			}
			return out, nil
		},
	}
}

// Filter keeps the elements for which keep returns true.
func Filter[T any](d *Dataset[T], keep func(T) bool) *Dataset[T] {
	return &Dataset[T]{
		ctx:   d.ctx,
		parts: d.parts,
		owner: d.owner,
		compute: func(p int) ([]T, error) {
			in, err := d.partition(p)
			if err != nil {
				return nil, err
			}
			var out []T
			for _, v := range in {
				if keep(v) {
					out = append(out, v)
				}
			}
			return out, nil
		},
	}
}

// MapPartitions transforms a whole partition at once — the hook the
// similarity-join algorithms use to run their per-partition joins. f
// receives the partition index and its records.
func MapPartitions[T, U any](d *Dataset[T], f func(p int, in []T) ([]U, error)) *Dataset[U] {
	return &Dataset[U]{
		ctx:   d.ctx,
		parts: d.parts,
		owner: d.owner,
		compute: func(p int) ([]U, error) {
			in, err := d.partition(p)
			if err != nil {
				return nil, err
			}
			return f(p, in)
		},
	}
}

// Union concatenates two datasets (partitions of a followed by
// partitions of b), without a shuffle — Spark's rdd.union.
func Union[T any](a, b *Dataset[T]) *Dataset[T] {
	if a.ctx != b.ctx {
		panic("flow: union across contexts")
	}
	return &Dataset[T]{
		ctx:   a.ctx,
		parts: a.parts + b.parts,
		owner: func(p int) int {
			if p < a.parts {
				return a.ownerOf(p)
			}
			return b.ownerOf(p - a.parts)
		},
		compute: func(p int) ([]T, error) {
			if p < a.parts {
				return a.partition(p)
			}
			return b.partition(p - a.parts)
		},
	}
}

// Collect materializes the whole dataset on the driver, preserving
// partition order. In distributed mode it is an all-gather: every
// worker computes its owned partitions and receives the rest, so each
// worker's driver sees the identical full dataset.
func (d *Dataset[T]) Collect() ([]T, error) {
	if d.ctx.distributed() {
		return collectDistributed(d, d.ctx.nextCollective())
	}
	outs := make([][]T, d.parts)
	err := d.ctx.tracedDo("collect", d.parts, func(p int) error {
		part, err := d.partition(p)
		if err != nil {
			return err
		}
		outs[p] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	all := make([]T, 0, total)
	for _, o := range outs {
		all = append(all, o...)
	}
	return all, nil
}

// Count returns the number of elements. In distributed mode the
// per-worker counts are all-gathered and summed on every worker.
func (d *Dataset[T]) Count() (int64, error) {
	if d.ctx.distributed() {
		return countDistributed(d, d.ctx.nextCollective())
	}
	var n int64
	var mu sync.Mutex
	err := d.ctx.tracedDo("count", d.parts, func(p int) error {
		part, err := d.partition(p)
		if err != nil {
			return err
		}
		mu.Lock()
		n += int64(len(part))
		mu.Unlock()
		return nil
	})
	return n, err
}

// Reduce folds the dataset with an associative, commutative merge.
// It returns ok=false on an empty dataset. In distributed mode each
// worker folds its owned partitions and the partials are all-gathered
// and merged in rank order on every worker.
func Reduce[T any](d *Dataset[T], merge func(T, T) T) (T, bool, error) {
	if d.ctx.distributed() {
		return reduceDistributed(d, d.ctx.nextCollective(), merge)
	}
	var (
		mu    sync.Mutex
		acc   T
		have  bool
		zeroT T
	)
	err := d.ctx.parallelDo(d.parts, func(p int) error {
		part, err := d.partition(p)
		if err != nil {
			return err
		}
		if len(part) == 0 {
			return nil
		}
		local := part[0]
		for _, v := range part[1:] {
			local = merge(local, v)
		}
		mu.Lock()
		if have {
			acc = merge(acc, local)
		} else {
			acc, have = local, true
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return zeroT, false, err
	}
	return acc, have, nil
}

// ForEachPartition runs fn over every partition for its side effects
// (writing results to disk, collecting statistics, ...). In
// distributed mode only the partitions owned by this worker are
// visited — side effects stay worker-local and are not gathered.
func (d *Dataset[T]) ForEachPartition(fn func(p int, in []T) error) error {
	ps := d.ownedPartitions()
	return d.ctx.tracedDo("foreach", len(ps), func(i int) error {
		p := ps[i]
		in, err := d.partition(p)
		if err != nil {
			return err
		}
		return fn(p, in)
	})
}
