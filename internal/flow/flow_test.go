package flow_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"rankjoin/internal/flow"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sorted[T int | string](xs []T) []T {
	c := append([]T(nil), xs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 16, 100} {
		ctx := flow.NewContext(flow.Config{Workers: 4})
		d := flow.Parallelize(ctx, ints(57), parts)
		if d.NumPartitions() != parts {
			t.Fatalf("parts = %d, want %d", d.NumPartitions(), parts)
		}
		got, err := d.Collect()
		if err != nil {
			t.Fatal(err)
		}
		want := ints(57)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: collected %d, want %d", parts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: order not preserved at %d", parts, i)
			}
		}
	}
}

func TestParallelizeEmptyAndDefaultParts(t *testing.T) {
	ctx := flow.NewContext(flow.Config{})
	d := flow.Parallelize(ctx, []int(nil), 0)
	if d.NumPartitions() != ctx.Config().DefaultPartitions {
		t.Errorf("default partitions not applied")
	}
	got, err := d.Collect()
	if err != nil || len(got) != 0 {
		t.Errorf("empty collect: %v, %v", got, err)
	}
	n, err := d.Count()
	if err != nil || n != 0 {
		t.Errorf("empty count: %v, %v", n, err)
	}
}

func TestMapFilterFlatMapPipeline(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 3})
	d := flow.Parallelize(ctx, ints(100), 7)
	sq := flow.Map(d, func(x int) int { return x * x })
	even := flow.Filter(sq, func(x int) bool { return x%2 == 0 })
	dup := flow.FlatMap(even, func(x int) []int { return []int{x, x} })
	got, err := dup.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for x := 0; x < 100; x++ {
		if x*x%2 == 0 {
			want = append(want, x*x, x*x)
		}
	}
	if fmt.Sprint(sorted(got)) != fmt.Sprint(sorted(want)) {
		t.Fatalf("pipeline mismatch: %d vs %d elements", len(got), len(want))
	}
}

func TestMapPartitionsSeesEveryIndexOnce(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4})
	d := flow.Parallelize(ctx, ints(40), 9)
	tagged := flow.MapPartitions(d, func(p int, in []int) ([]string, error) {
		out := make([]string, len(in))
		for i, v := range in {
			out[i] = fmt.Sprintf("%d:%d", p, v)
		}
		return out, nil
	})
	got, err := tagged.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("got %d records", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate record %s", s)
		}
		seen[s] = true
	}
}

func TestUnion(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 2})
	a := flow.Parallelize(ctx, []int{1, 2, 3}, 2)
	b := flow.Parallelize(ctx, []int{4, 5}, 3)
	u := flow.Union(a, b)
	if u.NumPartitions() != 5 {
		t.Errorf("union parts = %d, want 5", u.NumPartitions())
	}
	got, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sorted(got)) != "[1 2 3 4 5]" {
		t.Errorf("union = %v", got)
	}
}

func TestReduce(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4})
	d := flow.Parallelize(ctx, ints(101), 8)
	sum, ok, err := flow.Reduce(d, func(a, b int) int { return a + b })
	if err != nil || !ok || sum != 5050 {
		t.Errorf("reduce = %d, %v, %v", sum, ok, err)
	}
	empty := flow.Parallelize(ctx, []int(nil), 4)
	if _, ok, _ := flow.Reduce(empty, func(a, b int) int { return a + b }); ok {
		t.Error("reduce of empty dataset reported a value")
	}
}

func TestGroupByKeyCompleteAndColocated(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4})
	rng := rand.New(rand.NewSource(1))
	var kvs []flow.KV[int, int]
	want := map[int][]int{}
	for i := 0; i < 500; i++ {
		k, v := rng.Intn(37), i
		kvs = append(kvs, flow.KV[int, int]{K: k, V: v})
		want[k] = append(want[k], v)
	}
	g := flow.GroupByKey(flow.Parallelize(ctx, kvs, 11), 5)
	got, err := g.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("groups: %d, want %d", len(got), len(want))
	}
	for _, kv := range got {
		if fmt.Sprint(sorted(kv.V)) != fmt.Sprint(sorted(want[kv.K])) {
			t.Fatalf("group %d = %v, want %v", kv.K, kv.V, want[kv.K])
		}
	}
	// Each key must appear in exactly one output partition.
	var mu sync.Mutex
	seen := map[int]int{}
	err = g.ForEachPartition(func(p int, in []flow.KV[int, []int]) error {
		mu.Lock()
		defer mu.Unlock()
		for _, kv := range in {
			seen[kv.K]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %d appears in %d partitions", k, n)
		}
	}
}

func TestReduceByKeyMatchesSequential(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4})
	rng := rand.New(rand.NewSource(2))
	var kvs []flow.KV[string, int]
	want := map[string]int{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(50))
		v := rng.Intn(100)
		kvs = append(kvs, flow.KV[string, int]{K: k, V: v})
		want[k] += v
	}
	r := flow.ReduceByKey(flow.Parallelize(ctx, kvs, 13), 7, func(a, b int) int { return a + b })
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("keys: %d, want %d", len(got), len(want))
	}
	for _, kv := range got {
		if kv.V != want[kv.K] {
			t.Fatalf("key %s: %d, want %d", kv.K, kv.V, want[kv.K])
		}
	}
}

func TestCoGroupAndJoin(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4})
	a := flow.Parallelize(ctx, []flow.KV[int, string]{
		{K: 1, V: "a1"}, {K: 1, V: "a2"}, {K: 2, V: "a3"}, {K: 4, V: "a4"},
	}, 3)
	b := flow.Parallelize(ctx, []flow.KV[int, string]{
		{K: 1, V: "b1"}, {K: 2, V: "b2"}, {K: 2, V: "b3"}, {K: 3, V: "b4"},
	}, 2)

	cg, err := flow.CoGroup(a, b, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int]flow.CoGrouped[string, string]{}
	for _, kv := range cg {
		byKey[kv.K] = kv.V
	}
	if len(byKey) != 4 {
		t.Fatalf("cogroup keys = %d, want 4", len(byKey))
	}
	if g := byKey[1]; len(g.Left) != 2 || len(g.Right) != 1 {
		t.Errorf("key 1 cogroup = %+v", g)
	}
	if g := byKey[3]; len(g.Left) != 0 || len(g.Right) != 1 {
		t.Errorf("key 3 cogroup = %+v", g)
	}
	if g := byKey[4]; len(g.Left) != 1 || len(g.Right) != 0 {
		t.Errorf("key 4 cogroup = %+v", g)
	}

	j, err := flow.Join(a, b, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, kv := range j {
		rows = append(rows, fmt.Sprintf("%d:%s-%s", kv.K, kv.V.Left, kv.V.Right))
	}
	want := []string{"1:a1-b1", "1:a2-b1", "2:a3-b2", "2:a3-b3"}
	if fmt.Sprint(sorted(rows)) != fmt.Sprint(sorted(want)) {
		t.Errorf("join rows = %v, want %v", sorted(rows), sorted(want))
	}
}

func TestDistinct(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4})
	var data []int
	for i := 0; i < 300; i++ {
		data = append(data, i%40)
	}
	got, err := flow.Distinct(flow.Parallelize(ctx, data, 9), 5).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sorted(got)) != fmt.Sprint(ints(40)) {
		t.Errorf("distinct = %v", sorted(got))
	}
}

func TestDistinctBy(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 2})
	type rec struct {
		ID   int
		Note string
	}
	data := []rec{{1, "x"}, {2, "y"}, {1, "z"}, {3, "w"}, {2, "q"}}
	got, err := flow.DistinctBy(flow.Parallelize(ctx, data, 3), 2,
		func(r rec) int { return r.ID }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]int{}
	for _, r := range got {
		ids[r.ID]++
	}
	if len(got) != 3 || ids[1] != 1 || ids[2] != 1 || ids[3] != 1 {
		t.Errorf("distinctBy = %v", got)
	}
}

func TestMapValuesKeysValues(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 2})
	d := flow.Parallelize(ctx, []flow.KV[int, int]{{K: 1, V: 10}, {K: 2, V: 20}}, 2)
	mv, _ := flow.MapValues(d, func(v int) int { return v + 1 }).Collect()
	if len(mv) != 2 || mv[0].V+mv[1].V != 32 {
		t.Errorf("mapValues = %v", mv)
	}
	ks, _ := flow.Keys(d).Collect()
	vs, _ := flow.Values(d).Collect()
	if fmt.Sprint(sorted(ks)) != "[1 2]" || fmt.Sprint(sorted(vs)) != "[10 20]" {
		t.Errorf("keys=%v values=%v", ks, vs)
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4})
	var calls atomic.Int64
	d := flow.Parallelize(ctx, ints(50), 5)
	counted := flow.Map(d, func(x int) int {
		calls.Add(1)
		return x
	}).Cache()
	if _, err := counted.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := counted.Count(); err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Map(counted, func(x int) int { return x }).Collect(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 50 {
		t.Errorf("map ran %d times, want 50 (cache miss)", calls.Load())
	}

	// Without cache, three actions recompute three times.
	calls.Store(0)
	uncached := flow.Map(d, func(x int) int {
		calls.Add(1)
		return x
	})
	uncached.Collect()
	uncached.Count()
	uncached.Collect()
	if calls.Load() != 150 {
		t.Errorf("uncached map ran %d times, want 150", calls.Load())
	}
}

func TestErrorPropagation(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 3})
	boom := errors.New("boom")
	d := flow.Parallelize(ctx, ints(20), 4)
	bad := flow.MapPartitions(d, func(p int, in []int) ([]int, error) {
		if p == 2 {
			return nil, boom
		}
		return in, nil
	})
	if _, err := bad.Collect(); !errors.Is(err, boom) {
		t.Errorf("collect err = %v, want boom", err)
	}
	// Through a shuffle as well.
	keyed := flow.Map(bad, func(x int) flow.KV[int, int] { return flow.KV[int, int]{K: x, V: x} })
	if _, err := flow.GroupByKey(keyed, 3).Collect(); !errors.Is(err, boom) {
		t.Errorf("shuffled collect err = %v, want boom", err)
	}
}

// TestShuffleDeterminismAcrossWorkersAndPartitions: the same logical
// program produces the same result set regardless of engine sizing.
func TestShuffleDeterminismAcrossWorkersAndPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var kvs []flow.KV[int, int]
	for i := 0; i < 2000; i++ {
		kvs = append(kvs, flow.KV[int, int]{K: rng.Intn(100), V: rng.Intn(10)})
	}
	run := func(workers, inParts, outParts int) string {
		ctx := flow.NewContext(flow.Config{Workers: workers})
		r := flow.ReduceByKey(flow.Parallelize(ctx, kvs, inParts), outParts,
			func(a, b int) int { return a + b })
		got, err := r.Collect()
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, len(got))
		for i, kv := range got {
			rows[i] = fmt.Sprintf("%d=%d", kv.K, kv.V)
		}
		sort.Strings(rows)
		return fmt.Sprint(rows)
	}
	ref := run(1, 1, 1)
	for _, cfg := range [][3]int{{1, 5, 3}, {4, 5, 3}, {8, 16, 11}, {2, 100, 1}} {
		if got := run(cfg[0], cfg[1], cfg[2]); got != ref {
			t.Errorf("config %v diverged", cfg)
		}
	}
}

// TestSpillEquivalence: with an absurdly small spill threshold every
// bucket round-trips through disk and results are unchanged.
func TestSpillEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var kvs []flow.KV[int, int]
	for i := 0; i < 1000; i++ {
		kvs = append(kvs, flow.KV[int, int]{K: rng.Intn(25), V: i})
	}
	collectGroups := func(ctx *flow.Context) map[int][]int {
		g, err := flow.GroupByKey(flow.Parallelize(ctx, kvs, 7), 4).Collect()
		if err != nil {
			t.Fatal(err)
		}
		out := map[int][]int{}
		for _, kv := range g {
			out[kv.K] = sorted(kv.V)
		}
		return out
	}
	plain := collectGroups(flow.NewContext(flow.Config{Workers: 4}))

	spillCtx := flow.NewContext(flow.Config{Workers: 4, SpillDir: t.TempDir(), SpillThreshold: 1})
	spilled := collectGroups(spillCtx)
	if snap := spillCtx.Snapshot(); snap.SpilledRecords == 0 {
		t.Fatal("expected spilling with threshold 1")
	}
	if err := spillCtx.Close(); err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(spilled) {
		t.Fatalf("group count %d vs %d", len(plain), len(spilled))
	}
	for k, v := range plain {
		if fmt.Sprint(v) != fmt.Sprint(spilled[k]) {
			t.Fatalf("group %d differs with spilling", k)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 2})
	kvs := make([]flow.KV[int, int], 100)
	for i := range kvs {
		kvs[i] = flow.KV[int, int]{K: i % 10, V: i}
	}
	_ = flow.NewBroadcast(ctx, 42)
	g := flow.GroupByKey(flow.Parallelize(ctx, kvs, 4), 4)
	if _, err := g.Collect(); err != nil {
		t.Fatal(err)
	}
	snap := ctx.Snapshot()
	if snap.BroadcastValues != 1 {
		t.Errorf("broadcasts = %d", snap.BroadcastValues)
	}
	if snap.ShuffleRecords != 100 {
		t.Errorf("shuffled = %d, want 100", snap.ShuffleRecords)
	}
	if snap.Tasks == 0 {
		t.Error("no tasks recorded")
	}
	if snap.MaxPartitionRecords <= 0 || snap.MaxPartitionRecords > 100 {
		t.Errorf("max partition = %d", snap.MaxPartitionRecords)
	}
	ctx.ResetMetrics()
	if s := ctx.Snapshot(); s.Tasks != 0 || s.ShuffleRecords != 0 {
		t.Errorf("reset failed: %+v", s)
	}
}

// TestCompositeKeyShuffle exercises struct keys (used by the
// repartitioning technique's (item, subpartition) composite keys).
func TestCompositeKeyShuffle(t *testing.T) {
	type key struct {
		Item int32
		Sub  int
	}
	ctx := flow.NewContext(flow.Config{Workers: 4})
	var kvs []flow.KV[key, int]
	for i := 0; i < 200; i++ {
		kvs = append(kvs, flow.KV[key, int]{K: key{Item: int32(i % 7), Sub: i % 3}, V: i})
	}
	g, err := flow.GroupByKey(flow.Parallelize(ctx, kvs, 6), 5).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 21 {
		t.Fatalf("composite key groups = %d, want 21", len(g))
	}
	var total int
	for _, kv := range g {
		total += len(kv.V)
	}
	if total != 200 {
		t.Fatalf("records after shuffle = %d, want 200", total)
	}
}

func TestForEachPartitionErrors(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 2})
	d := flow.Parallelize(ctx, ints(10), 3)
	boom := errors.New("side effect failed")
	err := d.ForEachPartition(func(p int, in []int) error {
		if p == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}
