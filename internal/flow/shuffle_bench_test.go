package flow_test

import (
	"testing"

	"rankjoin/internal/flow"
)

// shuffleData builds n records spread over keys with the given
// duplication factor (dup records per distinct value).
func shuffleData(n, dup int) []flow.KV[int64, int64] {
	kvs := make([]flow.KV[int64, int64], n)
	for i := range kvs {
		kvs[i] = flow.KV[int64, int64]{K: int64(i / dup), V: int64(i)}
	}
	return kvs
}

// BenchmarkPartitionByKey measures the raw hash-partitioned exchange —
// the substrate cost under every wide transformation.
func BenchmarkPartitionByKey(b *testing.B) {
	kvs := shuffleData(1<<18, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := flow.NewContext(flow.Config{Workers: 4})
		sh := flow.PartitionByKey(flow.Parallelize(ctx, kvs, 16), 16)
		if _, err := sh.Count(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(kvs) * 16))
}

// BenchmarkGroupByKey measures a full shuffle plus gather.
func BenchmarkGroupByKey(b *testing.B) {
	kvs := shuffleData(1<<17, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := flow.NewContext(flow.Config{Workers: 4})
		if _, err := flow.GroupByKey(flow.Parallelize(ctx, kvs, 16), 16).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistinctDupHeavy measures the deduplication stage on
// duplicate-heavy data — the shape of every algorithm's final
// "remove duplicates" phase — and reports the records crossing the
// exchange per operation (the counter map-side combining shrinks).
func BenchmarkDistinctDupHeavy(b *testing.B) {
	type pairKey struct{ A, B int64 }
	n, dup := 1<<17, 8
	data := make([]pairKey, n)
	for i := range data {
		data[i] = pairKey{A: int64(i / dup), B: int64(i/dup + 1)}
	}
	var shuffled int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := flow.NewContext(flow.Config{Workers: 4})
		got, err := flow.Distinct(flow.Parallelize(ctx, data, 16), 16).Collect()
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != n/dup {
			b.Fatalf("distinct = %d, want %d", len(got), n/dup)
		}
		shuffled = ctx.Snapshot().ShuffleRecords
	}
	b.ReportMetric(float64(shuffled), "shuffled/op")
}
