package flow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"rankjoin/internal/obs"
)

// Exchanger connects one flow Context to its peers and turns the
// in-memory shuffle into a wire exchange. With an Exchanger attached
// (Config.Exchange) the engine runs in SPMD mode: every worker in the
// world executes the identical driver program over the identical input,
// partition ownership (partition index mod world size) splits the
// work, wide transformations exchange partitions through Alltoall, and
// actions become all-gathers so every worker retains an identical view
// of the driver state. Because all workers run the same construction
// and action sequence, collective ids — assigned from a single counter
// on the driver goroutine — agree across the world even when execution
// order races, and the transport matches frames by id alone.
type Exchanger interface {
	// World returns this worker's rank and the total number of workers.
	// Both must be constant for the lifetime of the Context.
	World() (self, size int)
	// Alltoall delivers outbound[w] to worker w and returns the frames
	// received from every worker for the same collective id, indexed by
	// source rank. outbound must have world-size entries;
	// outbound[self] is returned as inbound[self] without touching the
	// wire. Alltoall blocks until all world-size frames are available
	// or the transport fails.
	Alltoall(id int64, outbound [][]byte) ([][]byte, error)
}

// splitmixExchange is splitmix64, the avalanche finalizer used for
// architecture-stable key hashing (same constants as internal/shard's
// id router).
func splitmixExchange(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvMix64 folds one 64-bit word into an FNV-1a accumulator a byte at
// a time, keeping the hash independent of host endianness.
func fnvMix64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	return h
}

// stableKeyHash hashes a shuffle key identically on every peer and
// architecture. The in-process engine uses hash/maphash, whose seed is
// per-process random — perfect for one process, useless across a
// cluster where all workers must agree which partition a key belongs
// to. Common kernel key kinds take the fast type-switch path; struct
// keys (pair keys, composite sub-keys) fall back to a reflection walk
// over their fields.
func stableKeyHash[K comparable](key K) uint64 {
	switch k := any(key).(type) {
	case int:
		return splitmixExchange(uint64(int64(k)))
	case int8:
		return splitmixExchange(uint64(int64(k)))
	case int16:
		return splitmixExchange(uint64(int64(k)))
	case int32:
		return splitmixExchange(uint64(int64(k)))
	case int64:
		return splitmixExchange(uint64(k))
	case uint:
		return splitmixExchange(uint64(k))
	case uint32:
		return splitmixExchange(uint64(k))
	case uint64:
		return splitmixExchange(k)
	case string:
		h := fnvOffset64
		for i := 0; i < len(k); i++ {
			h = (h ^ uint64(k[i])) * fnvPrime64
		}
		return splitmixExchange(h)
	}
	h := stableHashValue(fnvOffset64, reflect.ValueOf(key))
	return splitmixExchange(h)
}

// stableHashValue folds a reflected key into an FNV-1a accumulator.
// Keys must be built from fixed-size scalars, strings, arrays and
// structs thereof; reference kinds have no stable cross-process
// identity and panic — a programming error in the pipeline, not a
// runtime condition.
func stableHashValue(h uint64, v reflect.Value) uint64 {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return fnvMix64(h, 1)
		}
		return fnvMix64(h, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return fnvMix64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return fnvMix64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		return fnvMix64(h, math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		return fnvMix64(fnvMix64(h, math.Float64bits(real(c))), math.Float64bits(imag(c)))
	case reflect.String:
		s := v.String()
		h = fnvMix64(h, uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * fnvPrime64
		}
		return h
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			h = stableHashValue(h, v.Index(i))
		}
		return h
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			h = fnvMix64(h, uint64(i))
			h = stableHashValue(h, v.Field(i))
		}
		return h
	default:
		panic(fmt.Sprintf("flow: %s (kind %s) is not usable as a distributed shuffle key", v.Type(), v.Kind()))
	}
}

// stablePartitionOf is partitionOf with the architecture-stable hash —
// the routing function of every distributed shuffle.
func stablePartitionOf[K comparable](key K, parts int) int {
	return int(stableKeyHash(key) % uint64(parts))
}

// encodeGob serializes one frame payload. Each payload carries its own
// gob stream (type definitions included) so frames are self-contained
// across processes.
func encodeGob[T any](v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("flow: encode exchange frame: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGob[T any](data []byte, v *T) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("flow: decode exchange frame: %w", err)
	}
	return nil
}

// shuffleChunk carries the records of one (source partition,
// destination partition) cell of a distributed shuffle.
type shuffleChunk[T any] struct {
	Src, Dst int
	Recs     []T
}

// gatherChunk carries one whole partition of an all-gather (Collect).
type gatherChunk[T any] struct {
	P    int
	Recs []T
}

// runShuffleDistributed is the over-the-wire variant of runShuffle:
// each worker routes the records of its owned source partitions with
// the stable hash, groups them into one gob frame per destination
// worker, runs an Alltoall, and reassembles its owned destination
// buckets in (source partition, destination) order — so bucket
// contents are identical on every worker regardless of frame arrival
// order. Spilling is not applied to distributed buckets.
func runShuffleDistributed[K comparable, V any](d *Dataset[KV[K, V]], parts int, st *shuffleState[KV[K, V]]) {
	ctx := d.ctx
	ex := ctx.cfg.Exchange
	self, world := ex.World()
	owned := d.ownedPartitions()

	sp := ctx.Tracer().StartTask("shuffle.exchange",
		obs.Int("collective", st.id), obs.Int("sources", int64(len(owned))),
		obs.Int("partitions", int64(parts)))
	defer sp.End()

	chunks := make([][]shuffleChunk[KV[K, V]], world)
	var mu sync.Mutex
	st.err = ctx.parallelDo(len(owned), func(i int) error {
		src := owned[i]
		in, err := d.partition(src)
		if err != nil {
			return err
		}
		local := make([][]KV[K, V], parts)
		for _, kv := range in {
			dst := stablePartitionOf(kv.K, parts)
			local[dst] = append(local[dst], kv)
		}
		ctx.metrics.ShuffleRecords.Add(int64(len(in)))
		mu.Lock()
		for dst, recs := range local {
			if len(recs) == 0 {
				continue
			}
			w := dst % world
			chunks[w] = append(chunks[w], shuffleChunk[KV[K, V]]{Src: src, Dst: dst, Recs: recs})
		}
		mu.Unlock()
		return nil
	})
	if st.err != nil {
		return
	}

	frames := make([][]byte, world)
	for w := range chunks {
		sortChunks(chunks[w])
		frames[w], st.err = encodeGob(chunks[w])
		if st.err != nil {
			return
		}
	}
	inbound, err := ex.Alltoall(st.id, frames)
	if err != nil {
		st.err = fmt.Errorf("flow: shuffle collective %d: %w", st.id, err)
		return
	}

	var all []shuffleChunk[KV[K, V]]
	for src, payload := range inbound {
		var cs []shuffleChunk[KV[K, V]]
		if src == self {
			cs = chunks[self]
		} else if err := decodeGob(payload, &cs); err != nil {
			st.err = fmt.Errorf("flow: shuffle collective %d, frame from worker %d: %w", st.id, src, err)
			return
		}
		all = append(all, cs...)
	}
	sortChunks(all)

	buckets := make([][]KV[K, V], parts)
	for _, c := range all {
		if c.Dst%world != self {
			st.err = fmt.Errorf("flow: shuffle collective %d: received partition %d not owned by worker %d/%d",
				st.id, c.Dst, self, world)
			return
		}
		buckets[c.Dst] = append(buckets[c.Dst], c.Recs...)
	}
	partHist := ctx.Histogram("shuffle/partition_records")
	var total int64
	for dst := self; dst < parts; dst += world {
		n := int64(len(buckets[dst]))
		ctx.metrics.observePartitionSize(n)
		partHist.Observe(n)
		total += n
	}
	sp.SetInt("records", total)
	st.buckets = buckets
	st.spilled = make([]string, parts)
}

func sortChunks[T any](cs []shuffleChunk[T]) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Src != cs[j].Src {
			return cs[i].Src < cs[j].Src
		}
		return cs[i].Dst < cs[j].Dst
	})
}

// collectDistributed is Collect in SPMD mode: every worker computes
// its owned partitions, all-gathers them, and reconstructs the full
// dataset in partition order — so each worker returns the identical
// slice and driver code downstream stays in lockstep.
func collectDistributed[T any](d *Dataset[T], id int64) ([]T, error) {
	ctx := d.ctx
	ex := ctx.cfg.Exchange
	self, world := ex.World()
	owned := d.ownedPartitions()

	outs := make([][]T, d.parts)
	err := ctx.tracedDo("collect", len(owned), func(i int) error {
		p := owned[i]
		part, err := d.partition(p)
		if err != nil {
			return err
		}
		outs[p] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	chunks := make([]gatherChunk[T], 0, len(owned))
	for _, p := range owned {
		chunks = append(chunks, gatherChunk[T]{P: p, Recs: outs[p]})
	}
	frame, err := encodeGob(chunks)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, world)
	for w := range out {
		out[w] = frame
	}
	inbound, err := ex.Alltoall(id, out)
	if err != nil {
		return nil, fmt.Errorf("flow: collect collective %d: %w", id, err)
	}
	for w, payload := range inbound {
		if w == self {
			continue
		}
		var cs []gatherChunk[T]
		if err := decodeGob(payload, &cs); err != nil {
			return nil, fmt.Errorf("flow: collect collective %d, frame from worker %d: %w", id, w, err)
		}
		for _, c := range cs {
			if c.P < 0 || c.P >= d.parts {
				return nil, fmt.Errorf("flow: collect collective %d: partition %d out of range", id, c.P)
			}
			outs[c.P] = c.Recs
		}
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	all := make([]T, 0, total)
	for _, o := range outs {
		all = append(all, o...)
	}
	return all, nil
}

// countDistributed is Count in SPMD mode: local counts over owned
// partitions, then an all-gather sum.
func countDistributed[T any](d *Dataset[T], id int64) (int64, error) {
	ctx := d.ctx
	ex := ctx.cfg.Exchange
	_, world := ex.World()
	owned := d.ownedPartitions()

	var local int64
	var mu sync.Mutex
	err := ctx.tracedDo("count", len(owned), func(i int) error {
		part, err := d.partition(owned[i])
		if err != nil {
			return err
		}
		mu.Lock()
		local += int64(len(part))
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, err
	}
	frame, err := encodeGob(local)
	if err != nil {
		return 0, err
	}
	out := make([][]byte, world)
	for w := range out {
		out[w] = frame
	}
	inbound, err := ex.Alltoall(id, out)
	if err != nil {
		return 0, fmt.Errorf("flow: count collective %d: %w", id, err)
	}
	var n int64
	for w, payload := range inbound {
		var c int64
		if err := decodeGob(payload, &c); err != nil {
			return 0, fmt.Errorf("flow: count collective %d, frame from worker %d: %w", id, w, err)
		}
		n += c
	}
	return n, nil
}

// reducePartial ships one worker's partial fold; Have distinguishes
// "no elements on this worker" from a zero-valued accumulator.
type reducePartial[T any] struct {
	Have bool
	Acc  T
}

// reduceDistributed is Reduce in SPMD mode: a local fold over owned
// partitions, then an all-gather of partials merged in worker-rank
// order on every worker.
func reduceDistributed[T any](d *Dataset[T], id int64, merge func(T, T) T) (T, bool, error) {
	ctx := d.ctx
	ex := ctx.cfg.Exchange
	_, world := ex.World()
	owned := d.ownedPartitions()

	var (
		mu    sync.Mutex
		local reducePartial[T]
		zeroT T
	)
	err := ctx.parallelDo(len(owned), func(i int) error {
		part, err := d.partition(owned[i])
		if err != nil {
			return err
		}
		if len(part) == 0 {
			return nil
		}
		acc := part[0]
		for _, v := range part[1:] {
			acc = merge(acc, v)
		}
		mu.Lock()
		if local.Have {
			local.Acc = merge(local.Acc, acc)
		} else {
			local = reducePartial[T]{Have: true, Acc: acc}
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return zeroT, false, err
	}
	frame, err := encodeGob(local)
	if err != nil {
		return zeroT, false, err
	}
	out := make([][]byte, world)
	for w := range out {
		out[w] = frame
	}
	inbound, err := ex.Alltoall(id, out)
	if err != nil {
		return zeroT, false, fmt.Errorf("flow: reduce collective %d: %w", id, err)
	}
	var acc reducePartial[T]
	for w, payload := range inbound {
		var p reducePartial[T]
		if err := decodeGob(payload, &p); err != nil {
			return zeroT, false, fmt.Errorf("flow: reduce collective %d, frame from worker %d: %w", id, w, err)
		}
		if !p.Have {
			continue
		}
		if acc.Have {
			acc.Acc = merge(acc.Acc, p.Acc)
		} else {
			acc = p
		}
	}
	return acc.Acc, acc.Have, nil
}
