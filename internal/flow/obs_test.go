package flow_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rankjoin/internal/flow"
	"rankjoin/internal/obs"
)

// TestMetricsConcurrentObservation hammers every observation path of
// the metrics surface — stage timings, filter counters, histograms,
// snapshots and resets — from concurrent goroutines while a real
// shuffle runs. Run with -race; it exists to prove the instrumentation
// is safe to call from any task at any time.
func TestMetricsConcurrentObservation(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4, DefaultPartitions: 4})
	defer ctx.Close()

	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx.ObserveStage(fmt.Sprintf("stage-%d", w%3), time.Microsecond)
				ctx.Histogram("test/values").Observe(int64(i % 128))
				ctx.Filters().Add(obs.FilterDelta{Generated: 2, PrunedPosition: 1, Verified: 1})
				switch i % 3 {
				case 0:
					_ = ctx.Snapshot()
				case 1:
					_ = ctx.Snapshot().String()
				case 2:
					if w == 0 {
						ctx.ResetMetrics()
					}
				}
			}
		}(w)
	}

	data := make([]flow.KV[int, int], 2048)
	for i := range data {
		data[i] = flow.KV[int, int]{K: i % 67, V: i}
	}
	for round := 0; round < 5; round++ {
		tr := obs.NewTracer()
		ctx.SetTracer(tr)
		grouped := flow.GroupByKey(flow.Parallelize(ctx, data, 4), 4)
		if _, err := grouped.Collect(); err != nil {
			t.Fatal(err)
		}
		ctx.SetTracer(nil)
	}
	close(stop)
	wg.Wait()

	// A reset can interleave with a multi-field Add, so conservation is
	// only guaranteed in quiescence: reset once more and re-add.
	ctx.ResetMetrics()
	ctx.Filters().Add(obs.FilterDelta{Generated: 2, PrunedPosition: 1, Verified: 1})
	if s := ctx.Snapshot(); !s.Filters.Conserved() {
		t.Fatalf("filters not conserved in quiescence: %v", s.Filters)
	}
}

// TestShuffleSpansWellFormed checks that a traced shuffle produces a
// structurally valid span tree (everything ended, children inside
// parents, no same-track sibling overlap) with the expected shape.
func TestShuffleSpansWellFormed(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 4, DefaultPartitions: 4})
	defer ctx.Close()
	tr := obs.NewTracer()
	ctx.SetTracer(tr)

	data := make([]flow.KV[string, int], 500)
	for i := range data {
		data[i] = flow.KV[string, int]{K: fmt.Sprintf("k%d", i%31), V: i}
	}
	root := tr.StartScope("test/root")
	grouped := flow.GroupByKey(flow.Parallelize(ctx, data, 4), 8)
	if _, err := grouped.Collect(); err != nil {
		t.Fatal(err)
	}
	root.End()
	ctx.SetTracer(nil)

	if err := tr.Validate(); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
	tree := tr.Tree()
	for _, want := range []string{"shuffle", "shuffle.scan", "shuffle.write", "scan", "write", "collect", "collect.task"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("trace missing %q:\n%s", want, tree)
		}
	}

	s := ctx.Snapshot()
	h, ok := s.Histograms["shuffle/partition_records"]
	if !ok {
		t.Fatalf("missing shuffle/partition_records histogram; have %v", s.Histograms)
	}
	if h.Count != 8 {
		t.Fatalf("partition histogram count = %d, want 8 (one per destination)", h.Count)
	}
	if h.Sum != 500 {
		t.Fatalf("partition histogram sum = %d, want 500", h.Sum)
	}
	if h.Max != s.MaxPartitionRecords {
		t.Fatalf("histogram max %d != MaxPartitionRecords %d", h.Max, s.MaxPartitionRecords)
	}
}

// TestSnapshotStringDeterministic pins the ordering contract of
// MetricsSnapshot.String: stages and histograms appear sorted by name,
// so repeated renderings of one snapshot are byte-identical.
func TestSnapshotStringDeterministic(t *testing.T) {
	ctx := flow.NewContext(flow.Config{})
	defer ctx.Close()
	ctx.ObserveStage("b/stage", time.Millisecond)
	ctx.ObserveStage("a/stage", time.Millisecond)
	ctx.Histogram("z/hist").Observe(4)
	ctx.Histogram("a/hist").Observe(2)
	ctx.Filters().Add(obs.FilterDelta{Generated: 3, PrunedPrefix: 1, Verified: 2, Emitted: 1})

	s := ctx.Snapshot()
	got := s.String()
	if got != s.String() {
		t.Fatal("String not deterministic across calls")
	}
	aStage := strings.Index(got, "a/stage=")
	bStage := strings.Index(got, "b/stage=")
	if aStage < 0 || bStage < 0 || aStage > bStage {
		t.Fatalf("stages not sorted in %q", got)
	}
	aHist := strings.Index(got, "hist[a/hist]=")
	zHist := strings.Index(got, "hist[z/hist]=")
	if aHist < 0 || zHist < 0 || aHist > zHist {
		t.Fatalf("histograms not sorted in %q", got)
	}
	if !strings.Contains(got, "filters[generated=3 prunedPrefix=1") {
		t.Fatalf("filters missing from %q", got)
	}

	ctx.ResetMetrics()
	rs := ctx.Snapshot()
	if !rs.Filters.IsZero() || len(rs.Histograms) != 0 || len(rs.Stages) != 0 {
		t.Fatalf("reset did not clear observability state: %s", rs)
	}
}
