package flow

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file is the engine's file-input substrate, standing in for the
// HDFS layer of the paper's cluster: a text file is split into
// byte-range input splits, one per partition, and each task reads only
// its split — Hadoop/Spark's TextInputFormat semantics. A line belongs
// to the split in which it starts; a split begins after the first
// newline at-or-after its byte offset (except split 0) and reads
// through the end of the line that spans its upper boundary.

// TextFile returns a dataset of the file's lines, split into parts
// byte-range partitions. The file is re-opened and scanned lazily per
// task, so the whole file is never held by the driver. A non-positive
// parts uses the context default.
func TextFile(ctx *Context, path string, parts int) *Dataset[string] {
	if parts <= 0 {
		parts = ctx.cfg.DefaultPartitions
	}
	return &Dataset[string]{
		ctx:   ctx,
		parts: parts,
		compute: func(p int) ([]string, error) {
			return readSplit(path, p, parts)
		},
	}
}

func readSplit(path string, p, parts int) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flow: textfile: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("flow: textfile: %w", err)
	}
	size := info.Size()
	lo := size * int64(p) / int64(parts)
	hi := size * int64(p+1) / int64(parts)
	if lo >= size {
		return nil, nil
	}
	if _, err := f.Seek(lo, io.SeekStart); err != nil {
		return nil, fmt.Errorf("flow: textfile: %w", err)
	}
	r := bufio.NewReaderSize(f, 256*1024)
	pos := lo
	if p > 0 {
		// Skip the partial line owned by the previous split.
		skipped, err := r.ReadString('\n')
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, fmt.Errorf("flow: textfile: %w", err)
		}
		pos += int64(len(skipped))
	}
	// A line belongs to split p iff its first byte s lies in
	// (lo_p, hi_p] (with lo_0 = −1): read while the current line start
	// is ≤ hi, one line past the byte range — Hadoop's LineRecordReader
	// convention. Together with the skip above, every line is read
	// exactly once across splits.
	var lines []string
	for pos <= hi {
		line, err := r.ReadString('\n')
		if len(line) > 0 {
			pos += int64(len(line))
			for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
				line = line[:len(line)-1]
			}
			lines = append(lines, line)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flow: textfile: %w", err)
		}
	}
	return lines, nil
}

// SaveTextFile writes the dataset as a directory of part-NNNNN files,
// one per partition (the shape Spark jobs leave on HDFS), using format
// to render each record as one line.
func SaveTextFile[T any](d *Dataset[T], dir string, format func(T) string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("flow: savetext: %w", err)
	}
	return d.ForEachPartition(func(p int, in []T) error {
		path := filepath.Join(dir, fmt.Sprintf("part-%05d", p))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("flow: savetext: %w", err)
		}
		w := bufio.NewWriter(f)
		for _, rec := range in {
			if _, err := w.WriteString(format(rec)); err != nil {
				f.Close()
				return fmt.Errorf("flow: savetext: %w", err)
			}
			if err := w.WriteByte('\n'); err != nil {
				f.Close()
				return fmt.Errorf("flow: savetext: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("flow: savetext: %w", err)
		}
		return f.Close()
	})
}

// LoadTextFile reads back a SaveTextFile directory (or any directory of
// part-* files) as a dataset with one partition per part file, in
// lexical file order.
func LoadTextFile(ctx *Context, dir string) (*Dataset[string], error) {
	matches, err := filepath.Glob(filepath.Join(dir, "part-*"))
	if err != nil {
		return nil, fmt.Errorf("flow: loadtext: %w", err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("flow: loadtext: no part files under %s", dir)
	}
	return &Dataset[string]{
		ctx:   ctx,
		parts: len(matches),
		compute: func(p int) ([]string, error) {
			return readSplit(matches[p], 0, 1)
		},
	}, nil
}
