package flow_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rankjoin/internal/flow"
)

// The fused shuffle's spill path: every wide transformation must
// produce identical results whether its buckets stay in memory or
// round-trip through disk. SpillThreshold 1 forces every non-empty
// bucket to spill.

func spillPair(t *testing.T) (plain, spilling *flow.Context) {
	t.Helper()
	plain = flow.NewContext(flow.Config{Workers: 4})
	spilling = flow.NewContext(flow.Config{Workers: 4, SpillDir: t.TempDir(), SpillThreshold: 1})
	return plain, spilling
}

func requireSpilled(t *testing.T, ctx *flow.Context) {
	t.Helper()
	if snap := ctx.Snapshot(); snap.SpilledRecords == 0 {
		t.Fatal("expected spilled records with threshold 1")
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillGroupByKeyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var kvs []flow.KV[int, int]
	for i := 0; i < 2000; i++ {
		kvs = append(kvs, flow.KV[int, int]{K: rng.Intn(31), V: i})
	}
	run := func(ctx *flow.Context) string {
		g, err := flow.GroupByKey(flow.Parallelize(ctx, kvs, 7), 5).Collect()
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, len(g))
		for i, kv := range g {
			rows[i] = fmt.Sprintf("%d=%v", kv.K, kv.V)
		}
		return fmt.Sprint(sorted(rows))
	}
	plain, spilling := spillPair(t)
	want, got := run(plain), run(spilling)
	requireSpilled(t, spilling)
	if want != got {
		t.Error("GroupByKey differs between in-memory and spilled buckets")
	}
}

func TestSpillCoGroupEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var left []flow.KV[int, int]
	var right []flow.KV[int, string]
	for i := 0; i < 1500; i++ {
		left = append(left, flow.KV[int, int]{K: rng.Intn(23), V: i})
		right = append(right, flow.KV[int, string]{K: rng.Intn(29), V: fmt.Sprintf("r%d", i)})
	}
	run := func(ctx *flow.Context) string {
		cg, err := flow.CoGroup(
			flow.Parallelize(ctx, left, 6),
			flow.Parallelize(ctx, right, 4), 5).Collect()
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, len(cg))
		for i, kv := range cg {
			rows[i] = fmt.Sprintf("%d=%v|%v", kv.K, kv.V.Left, kv.V.Right)
		}
		return fmt.Sprint(sorted(rows))
	}
	plain, spilling := spillPair(t)
	want, got := run(plain), run(spilling)
	requireSpilled(t, spilling)
	if want != got {
		t.Error("CoGroup differs between in-memory and spilled buckets")
	}
}

func TestSpillDistinctEquivalence(t *testing.T) {
	var data []int
	for i := 0; i < 3000; i++ {
		data = append(data, i%97)
	}
	run := func(ctx *flow.Context) string {
		got, err := flow.Distinct(flow.Parallelize(ctx, data, 9), 6).Collect()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(sorted(got))
	}
	plain, spilling := spillPair(t)
	want, got := run(plain), run(spilling)
	requireSpilled(t, spilling)
	if want != got {
		t.Error("Distinct differs between in-memory and spilled buckets")
	}
}

func TestSpillDistinctByEquivalence(t *testing.T) {
	type rec struct {
		ID   int
		Note string
	}
	var data []rec
	for i := 0; i < 2000; i++ {
		data = append(data, rec{ID: i % 53, Note: fmt.Sprintf("n%d", i)})
	}
	run := func(ctx *flow.Context) string {
		got, err := flow.DistinctBy(flow.Parallelize(ctx, data, 8), 5,
			func(r rec) int { return r.ID }).Collect()
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, len(got))
		for i, r := range got {
			rows[i] = fmt.Sprintf("%d:%s", r.ID, r.Note)
		}
		return fmt.Sprint(sorted(rows))
	}
	plain, spilling := spillPair(t)
	want, got := run(plain), run(spilling)
	requireSpilled(t, spilling)
	if want != got {
		t.Error("DistinctBy differs between in-memory and spilled buckets; the surviving representative must match")
	}
}

// TestMapSideDedupShrinksShuffle: Distinct over duplicate-heavy data
// must move only one record per (source partition, distinct value)
// across the exchange.
func TestMapSideDedupShrinksShuffle(t *testing.T) {
	const n, distinct, parts = 4000, 40, 8
	data := make([]int, n)
	for i := range data {
		data[i] = i % distinct
	}
	ctx := flow.NewContext(flow.Config{Workers: 4})
	got, err := flow.Distinct(flow.Parallelize(ctx, data, parts), parts).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != distinct {
		t.Fatalf("distinct = %d, want %d", len(got), distinct)
	}
	// Upper bound: every source partition contributes each value once.
	if snap := ctx.Snapshot(); snap.ShuffleRecords > distinct*parts {
		t.Errorf("shuffled %d records, want ≤ %d (map-side combining)", snap.ShuffleRecords, distinct*parts)
	}
}

// TestStageTimingMetrics: shuffle wall-clock and named stages surface
// in the snapshot and reset cleanly.
func TestStageTimingMetrics(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 2})
	kvs := make([]flow.KV[int, int], 10000)
	for i := range kvs {
		kvs[i] = flow.KV[int, int]{K: i % 100, V: i}
	}
	if _, err := flow.GroupByKey(flow.Parallelize(ctx, kvs, 4), 4).Count(); err != nil {
		t.Fatal(err)
	}
	ctx.ObserveStage("verify", 3*1e6)
	ctx.ObserveStage("verify", 2*1e6)
	snap := ctx.Snapshot()
	if snap.ShuffleTime <= 0 {
		t.Error("shuffle time not recorded")
	}
	if snap.Stages["verify"] != 5*1e6 {
		t.Errorf("stage time = %v, want 5ms", snap.Stages["verify"])
	}
	ctx.ResetMetrics()
	if s := ctx.Snapshot(); s.ShuffleTime != 0 || len(s.Stages) != 0 {
		t.Errorf("reset left timing state: %+v", s)
	}
}
