package core

import (
	"rankjoin/internal/filters"
	"rankjoin/internal/flow"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// expandInputs bundles what Algorithm 2 needs: the joining-phase result
// Rj (cpairs), the clustering-phase result Rc (clusterPairs and the
// clusters view of it), and the ranking dictionary for verification.
type expandInputs struct {
	thresholds   thresholds
	opts         Options
	filters      *obs.FilterCounters
	dict         flow.Broadcast[map[int64]*rankings.Ranking]
	clusterPairs *flow.Dataset[rankings.Pair]
	clusters     *flow.Dataset[flow.KV[int64, []Member]]
	cpairs       *flow.Dataset[CPair]
}

// expandCounts accumulates per-row candidate accounting so the hot
// candidate loops touch no atomics; flush folds a row's counts into the
// run stats and the engine filter counters in one shot each.
type expandCounts struct {
	candidates, pruned, accepted, verified, emitted int64
}

func (c expandCounts) flush(in expandInputs) {
	if c.candidates == 0 {
		return
	}
	if st := in.opts.Stats; st != nil {
		st.ExpandCandidates.Add(c.candidates)
		st.ExpandPruned.Add(c.pruned)
		st.ExpandAccepted.Add(c.accepted)
		st.ExpandVerified.Add(c.verified)
	}
	in.filters.Add(obs.FilterDelta{
		Generated:          c.candidates,
		PrunedTriangle:     c.pruned,
		AcceptedUnverified: c.accepted,
		Verified:           c.verified,
		Emitted:            c.emitted,
	})
}

// expand computes the final result set per Algorithm 2:
//
//	Rs  (both centroids singleton)          → written out directly;
//	Rj pairs within θ                       → results themselves;
//	clustering pairs within θ               → results (centroid–member);
//	same-cluster member pairs               → certified by 2θc ≤ θ or verified;
//	Rm ⋈ clusters                           → member–centroid candidates, triangle-filtered;
//	(Rm ⋈ clusters) ⋈ clusters              → member–member candidates, two-pivot-filtered.
func expand(in expandInputs) *flow.Dataset[rankings.Pair] {
	t := in.thresholds
	opts := in.opts

	// Direct results: any retrieved centroid pair already within θ.
	// This covers all of Rs (singleton pairs are only retrieved within
	// θ) plus the Rm pairs whose centroids are themselves close.
	direct := flow.FlatMap(in.cpairs, func(p CPair) []rankings.Pair {
		if p.Dist <= t.f {
			return []rankings.Pair{{A: p.A, B: p.B, Dist: p.Dist}}
		}
		return nil
	})

	// Centroid–member pairs from the clustering phase: results whenever
	// θc ≤ θ (filtered for the general case).
	centroidMember := flow.Filter(in.clusterPairs, func(p rankings.Pair) bool {
		return p.Dist <= t.f
	})

	// Same-cluster member–member pairs: d(mi, mj) ≤ 2θc by the triangle
	// inequality, so when 2θc ≤ θ the paper writes them out directly.
	sameCluster := flow.FlatMap(in.clusters, func(g flow.KV[int64, []Member]) []rankings.Pair {
		var cnt expandCounts
		var out []rankings.Pair
		for i := 0; i < len(g.V); i++ {
			for j := i + 1; j < len(g.V); j++ {
				mi, mj := g.V[i], g.V[j]
				if mi.ID == mj.ID {
					continue
				}
				if p, ok := resolveCandidate(in, &cnt, mi.ID, mj.ID, mi.Dist+mj.Dist, absInt(mi.Dist-mj.Dist)); ok {
					out = append(out, p)
				}
			}
		}
		cnt.flush(in)
		return out
	})

	// Rm: pairs with at least one non-singleton centroid must be
	// expanded against the clusters. Each expandable side becomes one
	// keyed row (the paper's "transform so the centroids are keys").
	type pairRec struct {
		Other     int64
		Dist      int // d(centroid, Other)
		OtherSing bool
	}
	exp1 := flow.FlatMap(in.cpairs, func(p CPair) []flow.KV[int64, pairRec] {
		var rows []flow.KV[int64, pairRec]
		if !p.ASing {
			rows = append(rows, flow.KV[int64, pairRec]{K: p.A, V: pairRec{Other: p.B, Dist: p.Dist, OtherSing: p.BSing}})
		}
		if !p.BSing {
			rows = append(rows, flow.KV[int64, pairRec]{K: p.B, V: pairRec{Other: p.A, Dist: p.Dist, OtherSing: p.ASing}})
		}
		return rows
	})
	j1 := flow.Join(exp1, in.clusters, opts.Partitions)

	// Rm,c: member-of-c against the other centroid, pruned with the
	// single-pivot triangle bound |d(c, other) − d(τ, c)| ≤ d(τ, other).
	rmc := flow.FlatMap(j1, func(row flow.KV[int64, flow.Joined[pairRec, []Member]]) []rankings.Pair {
		rec := row.V.Left
		var cnt expandCounts
		var out []rankings.Pair
		for _, m := range row.V.Right {
			if m.ID == rec.Other {
				continue
			}
			if p, ok := resolveCandidate(in, &cnt, m.ID, rec.Other,
				rec.Dist+m.Dist, filters.TriangleLower(rec.Dist, m.Dist)); ok {
				out = append(out, p)
			}
		}
		cnt.flush(in)
		return out
	})

	// Rm,m: when both centroids are non-singletons, the members of the
	// two clusters are joined against each other. The second join keys
	// the row by the other centroid ("switching the places of the
	// centroids", Example 5.4) — emitted once per unordered pair by the
	// key < other condition.
	type step2Rec struct {
		CDist   int // d(ci, cj)
		Members []Member
	}
	step2 := flow.FlatMap(j1, func(row flow.KV[int64, flow.Joined[pairRec, []Member]]) []flow.KV[int64, step2Rec] {
		rec := row.V.Left
		if rec.OtherSing || row.K >= rec.Other {
			return nil
		}
		return []flow.KV[int64, step2Rec]{{
			K: rec.Other,
			V: step2Rec{CDist: rec.Dist, Members: row.V.Right},
		}}
	})
	j2 := flow.Join(step2, in.clusters, opts.Partitions)
	rmm := flow.FlatMap(j2, func(row flow.KV[int64, flow.Joined[step2Rec, []Member]]) []rankings.Pair {
		rec := row.V.Left
		var cnt expandCounts
		var out []rankings.Pair
		for _, mi := range rec.Members {
			for _, mj := range row.V.Right {
				if mi.ID == mj.ID {
					continue
				}
				lower := rec.CDist - mi.Dist - mj.Dist
				if lower < 0 {
					lower = 0
				}
				if p, ok := resolveCandidate(in, &cnt, mi.ID, mj.ID,
					mi.Dist+rec.CDist+mj.Dist, lower); ok {
					out = append(out, p)
				}
			}
		}
		cnt.flush(in)
		return out
	})
	return flow.Union(direct,
		flow.Union(centroidMember,
			flow.Union(sameCluster,
				flow.Union(rmc, rmm))))
}

// resolveCandidate decides one expansion candidate (a, b) given a
// triangle upper and lower bound on its distance: prune when the lower
// bound exceeds θ, accept unverified when allowed and the upper bound
// certifies the pair, otherwise verify against the dictionary. Counts
// land in cnt; the caller flushes once per row.
func resolveCandidate(in expandInputs, cnt *expandCounts, a, b int64, upper, lower int) (rankings.Pair, bool) {
	t := in.thresholds
	cnt.candidates++
	if !in.opts.NoTriangleFilter && lower > t.f {
		cnt.pruned++
		return rankings.Pair{}, false
	}
	if in.opts.UnverifiedPartials && !in.opts.NoTriangleFilter && upper <= t.f {
		cnt.accepted++
		cnt.emitted++
		return rankings.NewPair(a, b, -1), true
	}
	cnt.verified++
	ra, rb := in.dict.Value()[a], in.dict.Value()[b]
	if d, ok := rankings.FootruleWithin(ra, rb, t.f); ok {
		cnt.emitted++
		return rankings.NewPair(a, b, d), true
	}
	return rankings.Pair{}, false
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
