package core_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/core"
	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestCLWithSpilling forces every shuffle bucket through the gob
// spill path (threshold 1), exercising disk round-trips of all the
// pipeline's record types — rankings, centroids, members, centroid
// pairs — and must still match the oracle exactly.
func TestCLWithSpilling(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	rs := testutil.ClusteredDataset(rng, 12, 4, 8, 40)
	want := oracle(rs, 0.3)

	ctx := flow.NewContext(flow.Config{
		Workers:           4,
		DefaultPartitions: 4,
		SpillDir:          t.TempDir(),
		SpillThreshold:    1,
	})
	defer func() {
		if err := ctx.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	got, err := core.Join(ctx, rs, core.Options{Theta: 0.3, ThetaC: 0.04, Delta: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(got, want) {
		extra, missing := rankings.DiffPairs(got, want)
		t.Fatalf("spilled CL diverged: extra=%v missing=%v", extra, missing)
	}
	if ctx.Snapshot().SpilledRecords == 0 {
		t.Fatal("spill threshold 1 spilled nothing")
	}
}
