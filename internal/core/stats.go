package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"rankjoin/internal/vj"
)

// Stats aggregates accounting across the four CL phases. The atomic
// counters are safe for concurrent kernel updates; the phase durations
// and cardinalities are written sequentially by the driver between
// phases. A nil *Stats is a valid no-op sink.
type Stats struct {
	// Clustering receives the kernel/group accounting of the
	// clustering-phase VJ run.
	Clustering vj.Stats
	// Joining receives the group accounting (posting lists, splits) of
	// the centroid join.
	Joining vj.Stats

	// Centroid-join kernel counters.
	JoinCandidates atomic.Int64
	JoinPruned     atomic.Int64 // dropped by the position filter
	JoinVerified   atomic.Int64
	JoinResults    atomic.Int64

	// Expansion counters.
	ExpandCandidates atomic.Int64
	ExpandPruned     atomic.Int64 // dropped by triangle filtering
	ExpandAccepted   atomic.Int64 // admitted without verification
	ExpandVerified   atomic.Int64

	// Cardinalities observed between phases (driver-written).
	ClusterPairs  int64 // near-duplicate pairs found at θc
	Clusters      int64 // non-singleton clusters |Cm|
	Singletons    int64 // |Cs|
	CentroidPairs int64 // |Rj|
	Results       int64

	// Phase wall-clock durations (driver-written).
	OrderingTime   time.Duration
	ClusteringTime time.Duration
	JoiningTime    time.Duration
	ExpansionTime  time.Duration
}

func (s *Stats) addJoinKernel(k kernelStats) {
	if s == nil {
		return
	}
	s.JoinCandidates.Add(k.candidates)
	s.JoinPruned.Add(k.prunedPosition)
	s.JoinVerified.Add(k.verified)
	s.JoinResults.Add(k.results)
}

// TotalTime sums the phase durations.
func (s *Stats) TotalTime() time.Duration {
	if s == nil {
		return 0
	}
	return s.OrderingTime + s.ClusteringTime + s.JoiningTime + s.ExpansionTime
}

func (s *Stats) String() string {
	if s == nil {
		return "<nil stats>"
	}
	return fmt.Sprintf(
		"clusterPairs=%d clusters=%d singletons=%d centroidPairs=%d results=%d "+
			"joinCand=%d joinPruned=%d joinVer=%d expCand=%d expPruned=%d expAccepted=%d expVer=%d "+
			"times[order=%v cluster=%v join=%v expand=%v]",
		s.ClusterPairs, s.Clusters, s.Singletons, s.CentroidPairs, s.Results,
		s.JoinCandidates.Load(), s.JoinPruned.Load(), s.JoinVerified.Load(),
		s.ExpandCandidates.Load(), s.ExpandPruned.Load(), s.ExpandAccepted.Load(), s.ExpandVerified.Load(),
		s.OrderingTime, s.ClusteringTime, s.JoiningTime, s.ExpansionTime)
}
