package core_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/core"
	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestOptionMatrix drives CL through combinations of every option
// simultaneously — repartitioning in both phases, ablation toggles,
// unverified partials, spilling — against the oracle. Feature
// interactions are where bugs hide.
func TestOptionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	rs := testutil.ClusteredDataset(rng, 15, 4, 10, 70)
	const theta = 0.3
	want := oracle(rs, theta)
	wantKeys := map[rankings.PairKey]int{}
	for _, p := range want {
		wantKeys[p.Key()] = p.Dist
	}

	type combo struct {
		name  string
		opts  core.Options
		spill bool
	}
	var combos []combo
	for _, delta := range []int{0, 4} {
		for _, uniform := range []bool{false, true} {
			for _, unverified := range []bool{false, true} {
				for _, spill := range []bool{false, true} {
					combos = append(combos, combo{
						name: "matrix",
						opts: core.Options{
							Theta: theta, ThetaC: 0.05,
							Delta: delta, ClusterDelta: delta,
							UniformJoinThreshold: uniform,
							UnverifiedPartials:   unverified,
						},
						spill: spill,
					})
				}
			}
		}
	}
	for i, c := range combos {
		cfg := flow.Config{Workers: 4, DefaultPartitions: 3}
		if c.spill {
			cfg.SpillDir = t.TempDir()
			cfg.SpillThreshold = 4
		}
		ctx := flow.NewContext(cfg)
		got, err := core.Join(ctx, rs, c.opts)
		if err != nil {
			t.Fatalf("combo %d (%+v): %v", i, c.opts, err)
		}
		if err := ctx.Close(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("combo %d (%+v spill=%v): %d pairs, want %d",
				i, c.opts, c.spill, len(got), len(want))
		}
		for _, p := range got {
			trueDist, ok := wantKeys[p.Key()]
			if !ok {
				t.Fatalf("combo %d: spurious pair %v", i, p)
			}
			if p.Dist != trueDist && !(c.opts.UnverifiedPartials && p.Dist == -1) {
				t.Fatalf("combo %d: pair %v wrong distance (true %d)", i, p, trueDist)
			}
		}
	}
}

// TestLargeK exercises the k=25 regime of Figure 11 against the oracle.
func TestLargeK(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	rs := testutil.ClusteredDataset(rng, 10, 3, 25, 200)
	for _, theta := range []float64{0.1, 0.3} {
		want := oracle(rs, theta)
		got, err := core.Join(ctx(4), rs, core.Options{Theta: theta, ThetaC: 0.03, Delta: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, want) {
			t.Fatalf("k=25 θ=%v diverged", theta)
		}
	}
}
