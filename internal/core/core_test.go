package core_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/core"
	"rankjoin/internal/flow"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
	"rankjoin/internal/vj"
)

func ctx(workers int) *flow.Context {
	return flow.NewContext(flow.Config{Workers: workers, DefaultPartitions: 4})
}

func oracle(rs []*rankings.Ranking, theta float64) []rankings.Pair {
	if len(rs) == 0 {
		return nil
	}
	return rankings.DedupPairs(ppjoin.BruteForce(rs, rankings.Threshold(theta, rs[0].K()), nil))
}

// TestCLMatchesOracleRandom: the full 4-phase pipeline returns exactly
// the brute-force result set on uniform random data across thresholds,
// clustering thresholds and engine sizings.
func TestCLMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		k := 4 + rng.Intn(8)
		rs := testutil.RandDataset(rng, 50+rng.Intn(120), k, k+rng.Intn(4*k))
		theta := 0.05 + 0.4*rng.Float64()
		thetaC := 0.01 + 0.09*rng.Float64()
		want := oracle(rs, theta)
		got, err := core.Join(ctx(1+rng.Intn(4)), rs, core.Options{
			Theta:      theta,
			ThetaC:     thetaC,
			Partitions: 1 + rng.Intn(8),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, want) {
			extra, missing := rankings.DiffPairs(got, want)
			t.Fatalf("trial %d k=%d θ=%.3f θc=%.3f: extra=%v missing=%v",
				trial, k, theta, thetaC, extra, missing)
		}
	}
}

// TestCLMatchesOracleClustered: datasets with genuine near-duplicate
// structure — the regime where the clustering phase actually forms
// non-singleton clusters and the expansion does real work.
func TestCLMatchesOracleClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		k := 5 + rng.Intn(8)
		rs := testutil.ClusteredDataset(rng, 8+rng.Intn(15), 2+rng.Intn(5), k, 4*k+rng.Intn(4*k))
		theta := 0.1 + 0.3*rng.Float64()
		thetaC := 0.02 + 0.08*rng.Float64()
		want := oracle(rs, theta)

		var st core.Stats
		got, err := core.Join(ctx(4), rs, core.Options{
			Theta:      theta,
			ThetaC:     thetaC,
			Partitions: 1 + rng.Intn(8),
			Stats:      &st,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, want) {
			extra, missing := rankings.DiffPairs(got, want)
			t.Fatalf("trial %d k=%d θ=%.3f θc=%.3f: extra=%v missing=%v\nstats: %v",
				trial, k, theta, thetaC, extra, missing, &st)
		}
	}
}

// TestClustersActuallyForm: on near-duplicate data the clustering phase
// must produce non-singleton clusters — otherwise CL degenerates to VJ
// and these tests prove nothing.
func TestClustersActuallyForm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rs := testutil.ClusteredDataset(rng, 20, 5, 10, 100)
	var st core.Stats
	if _, err := core.Join(ctx(4), rs, core.Options{Theta: 0.3, ThetaC: 0.05, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.Clusters == 0 {
		t.Fatalf("no clusters formed on clustered dataset: %v", &st)
	}
	if st.ClusterPairs == 0 || st.CentroidPairs == 0 {
		t.Fatalf("degenerate run: %v", &st)
	}
	if st.Singletons+st.Clusters == 0 {
		t.Fatalf("no centroids at all: %v", &st)
	}
}

// TestCLPMatchesOracle: repartitioning the centroid join (CL-P) with
// any δ leaves the result set unchanged.
func TestCLPMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		k := 5 + rng.Intn(6)
		rs := testutil.ClusteredDataset(rng, 15, 4, k, 5*k)
		theta := 0.15 + 0.25*rng.Float64()
		want := oracle(rs, theta)
		for _, delta := range []int{1, 3, 10, 100} {
			got, err := core.Join(ctx(4), rs, core.Options{
				Theta:      theta,
				ThetaC:     0.04,
				Delta:      delta,
				Partitions: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rankings.SamePairs(got, want) {
				extra, missing := rankings.DiffPairs(got, want)
				t.Fatalf("trial %d δ=%d: extra=%v missing=%v", trial, delta, extra, missing)
			}
		}
	}
}

// TestClusterDeltaAlsoCorrect: repartitioning the clustering phase too.
func TestClusterDeltaAlsoCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := testutil.ClusteredDataset(rng, 20, 4, 8, 40)
	want := oracle(rs, 0.3)
	got, err := core.Join(ctx(4), rs, core.Options{
		Theta: 0.3, ThetaC: 0.05, Delta: 5, ClusterDelta: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(got, want) {
		t.Fatal("cluster-phase repartitioning changed results")
	}
}

// TestAblationsStillExact: disabling Lemma 5.3 or the triangle filter
// trades performance, never correctness.
func TestAblationsStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 6; trial++ {
		k := 5 + rng.Intn(6)
		rs := testutil.ClusteredDataset(rng, 12, 4, k, 5*k)
		theta := 0.15 + 0.25*rng.Float64()
		want := oracle(rs, theta)
		for _, o := range []core.Options{
			{Theta: theta, ThetaC: 0.04, UniformJoinThreshold: true},
			{Theta: theta, ThetaC: 0.04, NoTriangleFilter: true},
			{Theta: theta, ThetaC: 0.04, UniformJoinThreshold: true, NoTriangleFilter: true},
		} {
			got, err := core.Join(ctx(4), rs, o)
			if err != nil {
				t.Fatal(err)
			}
			if !rankings.SamePairs(got, want) {
				extra, missing := rankings.DiffPairs(got, want)
				t.Fatalf("trial %d opts %+v: extra=%v missing=%v", trial, o, extra, missing)
			}
		}
	}
}

// TestUnverifiedPartials: pair identities must still match the oracle;
// pairs may carry Dist == -1, but only for genuinely-within-θ pairs.
func TestUnverifiedPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		k := 6 + rng.Intn(5)
		rs := testutil.ClusteredDataset(rng, 15, 4, k, 5*k)
		theta := 0.2 + 0.2*rng.Float64()
		want := oracle(rs, theta)
		var st core.Stats
		got, err := core.Join(ctx(4), rs, core.Options{
			Theta: theta, ThetaC: 0.05, UnverifiedPartials: true, Stats: &st,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs, oracle %d", trial, len(got), len(want))
		}
		wantKeys := map[rankings.PairKey]int{}
		for _, p := range want {
			wantKeys[p.Key()] = p.Dist
		}
		for _, p := range got {
			trueDist, ok := wantKeys[p.Key()]
			if !ok {
				t.Fatalf("trial %d: spurious pair %v", trial, p)
			}
			if p.Dist != -1 && p.Dist != trueDist {
				t.Fatalf("trial %d: pair %v has wrong distance (true %d)", trial, p, trueDist)
			}
		}
	}
}

// TestThetaCAboveTheta: an oversized clustering threshold (θc > θ) is
// unusual but must stay correct — clustering pairs beyond θ are
// filtered, same-cluster members verified.
func TestThetaCAboveTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rs := testutil.ClusteredDataset(rng, 15, 4, 8, 40)
	want := oracle(rs, 0.1)
	got, err := core.Join(ctx(4), rs, core.Options{Theta: 0.1, ThetaC: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(got, want) {
		extra, missing := rankings.DiffPairs(got, want)
		t.Fatalf("θc>θ: extra=%v missing=%v", extra, missing)
	}
}

// TestIndexVariantClustering: the clustering phase can run the
// PPJoin-style kernel instead of the nested loop.
func TestIndexVariantClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rs := testutil.ClusteredDataset(rng, 15, 4, 8, 40)
	want := oracle(rs, 0.25)
	got, err := core.Join(ctx(4), rs, core.Options{Theta: 0.25, ThetaC: 0.04, Variant: vj.IndexJoin})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(got, want) {
		t.Fatal("IndexJoin clustering variant diverged")
	}
}

func TestValidationAndEdges(t *testing.T) {
	if _, err := core.Join(ctx(1), nil, core.Options{Theta: 0.2}); err != nil {
		t.Errorf("empty dataset: %v", err)
	}
	mixed := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3}),
		rankings.MustNew(1, []rankings.Item{1, 2}),
	}
	if _, err := core.Join(ctx(1), mixed, core.Options{Theta: 0.2}); err == nil {
		t.Error("mixed lengths accepted")
	}
	if _, err := core.Join(ctx(1), mixed[:1], core.Options{Theta: 2}); err == nil {
		t.Error("theta out of range accepted")
	}
	if _, err := core.Join(ctx(1), mixed[:1], core.Options{Theta: 0.2, ThetaC: -1}); err == nil {
		t.Error("negative thetaC accepted")
	}
	dup := []*rankings.Ranking{
		rankings.MustNew(7, []rankings.Item{1, 2, 3}),
		rankings.MustNew(7, []rankings.Item{4, 5, 6}),
	}
	if _, err := core.Join(ctx(1), dup, core.Options{Theta: 0.2}); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestSingleRankingAndTinyDatasets(t *testing.T) {
	one := []*rankings.Ranking{rankings.MustNew(0, []rankings.Item{1, 2, 3, 4, 5})}
	got, err := core.Join(ctx(2), one, core.Options{Theta: 0.3})
	if err != nil || len(got) != 0 {
		t.Errorf("single ranking: %v %v", got, err)
	}
	two := append(one, rankings.MustNew(1, []rankings.Item{1, 2, 3, 5, 4}))
	got, err = core.Join(ctx(2), two, core.Options{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dist != 2 {
		t.Errorf("adjacent swap pair: %v", got)
	}
}

// TestStatsPopulated: the per-phase accounting is filled in and
// internally consistent.
func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rs := testutil.ClusteredDataset(rng, 20, 5, 10, 80)
	var st core.Stats
	got, err := core.Join(ctx(4), rs, core.Options{Theta: 0.3, ThetaC: 0.05, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != int64(len(got)) {
		t.Errorf("results %d vs %d", st.Results, len(got))
	}
	if st.JoinCandidates.Load() < st.JoinVerified.Load() {
		t.Errorf("join candidates < verified: %v", &st)
	}
	if st.ExpandCandidates.Load() < st.ExpandVerified.Load()+st.ExpandPruned.Load() {
		t.Errorf("expansion accounting inconsistent: %v", &st)
	}
	if st.Clustering.Snapshot().Groups == 0 {
		t.Error("clustering stats empty")
	}
	if st.TotalTime() <= 0 {
		t.Error("phase times not recorded")
	}
}

// TestDeterministicAcrossWorkers: same dataset and options, any worker
// budget — identical result sets.
func TestDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := testutil.ClusteredDataset(rng, 15, 4, 10, 60)
	ref, err := core.Join(ctx(1), rs, core.Options{Theta: 0.3, ThetaC: 0.04, Delta: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		got, err := core.Join(ctx(w), rs, core.Options{Theta: 0.3, ThetaC: 0.04, Delta: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, ref) {
			t.Fatalf("workers=%d diverged", w)
		}
	}
}

// TestAgainstVJ: CL and VJ must agree on every dataset (they solve the
// same problem); this cross-checks two fully independent pipelines.
func TestAgainstVJ(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		k := 5 + rng.Intn(6)
		rs := testutil.ClusteredDataset(rng, 12, 4, k, 4*k)
		theta := 0.1 + 0.3*rng.Float64()
		fromVJ, err := vj.Join(ctx(4), rs, vj.Options{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		fromCL, err := core.Join(ctx(4), rs, core.Options{Theta: theta, ThetaC: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(rankings.DedupPairs(fromVJ), fromCL) {
			t.Fatalf("trial %d: CL and VJ disagree", trial)
		}
	}
}
