// Package core implements the paper's primary contribution: the
// multi-stage clustering similarity join for top-k rankings (CL), and
// its repartitioning variant (CL-P). The pipeline has the four phases
// of Figure 2 — Ordering, Clustering, Joining, Expansion — and uses the
// metric properties of the Footrule distance (Lemmas 5.1 and 5.3,
// triangle-inequality filtering in the expansion) to beat a plain
// VJ-style join at larger thresholds.
package core

import (
	"rankjoin/internal/filters"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// Centroid is one record of the joining phase's input C = Cm ∪ Cs: a
// ranking that represents either a non-singleton cluster (Singleton ==
// false) or itself only (Singleton == true).
type Centroid struct {
	R *rankings.Ranking
	// Singleton marks members of Cs — rankings with no neighbour
	// within the clustering threshold.
	Singleton bool
}

// CPair is one joining-phase result: a pair of centroids within the
// Lemma 5.3 threshold for their type combination, in canonical (A < B)
// order, with the singleton flags carried for the expansion phase.
type CPair struct {
	A, B         int64
	Dist         int
	ASing, BSing bool
}

func newCPair(a, b *Centroid, dist int) CPair {
	if a.R.ID > b.R.ID {
		a, b = b, a
	}
	return CPair{A: a.R.ID, B: b.R.ID, Dist: dist, ASing: a.Singleton, BSing: b.Singleton}
}

// thresholds holds the precomputed unnormalized distance bounds of one
// CL run.
type thresholds struct {
	k  int
	f  int // F: join threshold θ
	fc int // Fc: clustering threshold θc
	fo int // Fo = F + 2·Fc: Lemma 5.1 joining threshold

	// Prefix sizes for the joining phase. prefixM applies to
	// non-singleton centroids (threshold Fo). prefixS applies to
	// singletons; Algorithm 1 in the paper uses get_prefix(θ) here,
	// but a prefix based on θ alone can miss a (Cm, Cs) pair at
	// distance in (θ, θ+θc] when the minimal overlap for θ exceeds the
	// one for θ+θc — the canonically smallest shared item may then hide
	// in the singleton's un-indexed suffix. We therefore compute the
	// singleton prefix from θ+θc, the largest threshold a singleton
	// participates in under Lemma 5.3, which preserves the lemma's
	// savings (the singleton prefix stays shorter than prefixM) while
	// restoring completeness. See DESIGN.md.
	prefixM int
	prefixS int
}

func newThresholds(theta, thetaC float64, k int) thresholds {
	f := rankings.Threshold(theta, k)
	fc := rankings.Threshold(thetaC, k)
	fo := f + 2*fc
	return thresholds{
		k:       k,
		f:       f,
		fc:      fc,
		fo:      fo,
		prefixM: filters.PrefixOverlap(fo, k),
		prefixS: filters.PrefixOverlap(f+fc, k),
	}
}

// pairMax returns the Lemma 5.3 distance bound for a centroid pair:
// θ+2θc for two cluster representatives, θ+θc when one side is a
// singleton, θ when both are.
func (t thresholds) pairMax(aSing, bSing bool) int {
	switch {
	case aSing && bSing:
		return t.f
	case aSing || bSing:
		return t.f + t.fc
	default:
		return t.fo
	}
}

// prefixFor returns the joining-phase prefix size for a centroid type.
func (t thresholds) prefixFor(singleton bool) int {
	if singleton {
		return t.prefixS
	}
	return t.prefixM
}

// centroidSelfJoin is the Algorithm 1 kernel within one posting-list
// (sub-)partition: a nested loop over ordered centroid pairs, applying
// the position filter and the per-type Lemma 5.3 threshold.
func centroidSelfJoin(members []*Centroid, t thresholds, uniform bool, st *kernelStats) []CPair {
	var out []CPair
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if p, ok := verifyCentroidPair(members[i], members[j], t, uniform, st); ok {
				out = append(out, p)
			}
		}
	}
	return out
}

// centroidCrossJoin is the R-S variant across two sub-partitions.
func centroidCrossJoin(a, b []*Centroid, t thresholds, uniform bool, st *kernelStats) []CPair {
	var out []CPair
	for _, x := range a {
		for _, y := range b {
			if p, ok := verifyCentroidPair(x, y, t, uniform, st); ok {
				out = append(out, p)
			}
		}
	}
	return out
}

func verifyCentroidPair(x, y *Centroid, t thresholds, uniform bool, st *kernelStats) (CPair, bool) {
	if x.R.ID == y.R.ID {
		return CPair{}, false
	}
	maxDist := t.pairMax(x.Singleton, y.Singleton)
	if uniform {
		// Lemma 5.3 disabled (ablation): every pair is held to the
		// loose Lemma 5.1 bound θ+2θc.
		maxDist = t.fo
	}
	st.candidates++
	if filters.PositionPrune(x.R, y.R, maxDist) {
		st.prunedPosition++
		return CPair{}, false
	}
	st.verified++
	d, ok := rankings.FootruleWithin(x.R, y.R, maxDist)
	if !ok {
		return CPair{}, false
	}
	st.results++
	return newCPair(x, y, d), true
}

// kernelStats mirrors ppjoin.Stats for the centroid kernels.
type kernelStats struct {
	candidates, prunedPosition, verified, results int64
}

// filterDelta converts one kernel run into the engine-wide
// filter-effectiveness delta (centroid kernels have no prefix filter:
// every candidate is either position-pruned or verified).
func (ks kernelStats) filterDelta() obs.FilterDelta {
	return obs.FilterDelta{
		Generated:      ks.candidates,
		PrunedPosition: ks.prunedPosition,
		Verified:       ks.verified,
		Emitted:        ks.results,
	}
}
