package core

import (
	"fmt"
	"rankjoin/internal/filters"
	"time"

	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
	"rankjoin/internal/vj"
)

// Options configures a CL / CL-P join.
type Options struct {
	// Theta is the normalized join threshold θ ∈ [0, 1].
	Theta float64
	// ThetaC is the normalized clustering threshold θc. The paper's
	// recommendation (and our default when zero) is 0.03; values below
	// 0.05 are advised.
	ThetaC float64
	// Partitions is the shuffle partition count (0 = context default).
	Partitions int
	// Variant selects the per-partition kernel of the clustering-phase
	// VJ run. The paper's CL uses iterators, i.e. NestedLoop, which is
	// the default.
	Variant vj.Variant
	// Delta is the §6 repartitioning threshold δ applied to the
	// centroid-joining phase. Zero disables repartitioning: the
	// algorithm is then plain CL; a positive value makes it CL-P.
	Delta int
	// ClusterDelta optionally applies repartitioning to the
	// clustering-phase posting lists as well (rarely needed: θc is
	// small, so clustering prefixes and posting lists stay short).
	ClusterDelta int
	// RepartitionFactor scales partition counts after a split (0 = 2).
	RepartitionFactor int
	// UniformJoinThreshold disables the Lemma 5.3 refinement and holds
	// every centroid pair to θ+2θc — the ablation for Algorithm 1.
	UniformJoinThreshold bool
	// NoTriangleFilter disables the expansion phase's
	// triangle-inequality pruning — every candidate is verified. Kept
	// as an ablation of §5.3.
	NoTriangleFilter bool
	// UnverifiedPartials emits pairs whose distance is certified ≤ θ
	// by the triangle inequality without computing it, exactly as the
	// paper writes same-cluster members to disk unverified when
	// 2θc ≤ θ. Such pairs carry Dist == -1. Off by default so that the
	// output always contains exact distances.
	UnverifiedPartials bool
	// Stats, when non-nil, receives per-phase accounting.
	Stats *Stats
}

func (o Options) withDefaults() Options {
	if o.ThetaC == 0 {
		o.ThetaC = 0.03
	}
	return o
}

func (o Options) validate(rs []*rankings.Ranking) (k int, err error) {
	if o.Theta < 0 || o.Theta > 1 {
		return 0, fmt.Errorf("core: theta %v out of [0,1]", o.Theta)
	}
	if o.ThetaC < 0 || o.ThetaC > 1 {
		return 0, fmt.Errorf("core: thetaC %v out of [0,1]", o.ThetaC)
	}
	if len(rs) == 0 {
		return 0, nil
	}
	k = rs[0].K()
	for _, r := range rs {
		if r.K() != k {
			return 0, fmt.Errorf("core: mixed ranking lengths %d and %d (fixed-length rankings required)", k, r.K())
		}
	}
	return k, nil
}

// Member records one cluster member: its ranking id and its exact
// distance to the cluster centroid (known from the clustering phase and
// exploited by the expansion phase's triangle filters).
type Member struct {
	ID   int64
	Dist int
}

// Join runs the full CL (or CL-P when Delta > 0) pipeline of Figure 2:
//
//	Ordering   — one global frequency ordering, computed once;
//	Clustering — a VJ run at θc; pairs grouped by their smaller id form
//	             equal-radius clusters (centroid = smaller id);
//	Joining    — a VJ-style run over C = Cm ∪ Cs at θ+2θc, tightened
//	             per pair type by Lemma 5.3 (Algorithm 1);
//	Expansion  — joining-phase results are joined back with the
//	             clusters and candidates are pruned with the triangle
//	             inequality before verification (Algorithm 2).
//
// The result is the exact set of pairs within θ (deduplicated); with
// UnverifiedPartials some pairs carry Dist == -1 (within θ by triangle
// certificate, distance not computed).
func Join(ctx *flow.Context, rs []*rankings.Ranking, opts Options) ([]rankings.Pair, error) {
	opts = opts.withDefaults()
	k, err := opts.validate(rs)
	if err != nil {
		return nil, err
	}
	if len(rs) == 0 {
		return nil, nil
	}
	t := newThresholds(opts.Theta, opts.ThetaC, k)

	rankings.IndexAll(rs)
	byID := make(map[int64]*rankings.Ranking, len(rs))
	for _, r := range rs {
		if dup, exists := byID[r.ID]; exists {
			return nil, fmt.Errorf("core: duplicate ranking id %d (%v vs %v)", r.ID, dup, r)
		}
		byID[r.ID] = r
	}
	dict := flow.NewBroadcast(ctx, byID)

	ds := flow.Parallelize(ctx, rs, opts.Partitions).Cache()

	// The four phases of Figure 2 run sequentially on the driver; each
	// one is a tracer scope, so shuffles and tasks it forces nest under
	// it in the exported trace. All span calls no-op without a tracer.
	tr := ctx.Tracer()

	// Phase 1: Ordering — one canonical frequency order for both VJ
	// runs (§5 "Ordering").
	phaseStart := time.Now()
	orderSpan := tr.StartScope("cl/ordering")
	// Every phase span is deferred in addition to the explicit End on
	// the success path (End is idempotent): an error return mid-phase
	// must not leak an open scope, or obs.Validate rejects the trace.
	defer orderSpan.End()
	ord, err := vj.ComputeOrder(ds, opts.Partitions)
	if err != nil {
		return nil, err
	}
	orderSpan.End()
	ctx.ObserveStage("cl/ordering", time.Since(phaseStart))
	if opts.Stats != nil {
		opts.Stats.OrderingTime = time.Since(phaseStart)
	}

	// Phase 2: Clustering — VJ at θc over the pre-ordered dataset.
	phaseStart = time.Now()
	clusterSpan := tr.StartScope("cl/clustering")
	defer clusterSpan.End()
	clusterPairsDS, err := vj.JoinDataset(ds, rs, vj.Options{
		Theta:             opts.ThetaC,
		Variant:           opts.Variant,
		Partitions:        opts.Partitions,
		Order:             ord,
		Delta:             opts.ClusterDelta,
		RepartitionFactor: opts.RepartitionFactor,
		Stats:             statsClustering(opts.Stats),
	})
	if err != nil {
		return nil, err
	}
	clusterPairsDS = clusterPairsDS.Cache()
	nClusterPairs, err := clusterPairsDS.Count()
	if err != nil {
		return nil, err
	}

	// Clusters: group the θc-pairs by their smaller id — the centroid
	// (Figure 3). The member keeps its exact centroid distance. The
	// member-count histogram is observed once per cluster (the grouped
	// dataset is cached, so the observing map runs exactly once).
	clusterHist := ctx.Histogram("cl/cluster_members")
	clusters := flow.Map(
		flow.GroupByKey(
			flow.Map(clusterPairsDS, func(p rankings.Pair) flow.KV[int64, Member] {
				return flow.KV[int64, Member]{K: p.A, V: Member{ID: p.B, Dist: p.Dist}}
			}),
			opts.Partitions,
		),
		func(g flow.KV[int64, []Member]) flow.KV[int64, []Member] {
			clusterHist.Observe(int64(len(g.V)))
			return g
		},
	).Cache()

	// Singletons: rankings that appear in no θc-pair, found with a
	// distributed anti-join (cogroup with empty right side).
	allIDs := flow.Map(ds, func(r *rankings.Ranking) flow.KV[int64, struct{}] {
		return flow.KV[int64, struct{}]{K: r.ID}
	})
	touched := flow.FlatMap(clusterPairsDS, func(p rankings.Pair) []flow.KV[int64, struct{}] {
		return []flow.KV[int64, struct{}]{{K: p.A}, {K: p.B}}
	})
	singletonIDs := flow.FlatMap(
		flow.CoGroup(allIDs, touched, opts.Partitions),
		func(kv flow.KV[int64, flow.CoGrouped[struct{}, struct{}]]) []int64 {
			if len(kv.V.Right) == 0 {
				return []int64{kv.K}
			}
			return nil
		})

	// C = Cm ∪ Cs.
	centroidRecords := flow.Union(
		flow.Map(flow.Keys(clusters), func(id int64) *Centroid {
			return &Centroid{R: dict.Value()[id], Singleton: false}
		}),
		flow.Map(singletonIDs, func(id int64) *Centroid {
			return &Centroid{R: dict.Value()[id], Singleton: true}
		}),
	)
	if opts.Stats != nil {
		opts.Stats.ClusterPairs = nClusterPairs
		if opts.Stats.Clusters, err = clusters.Count(); err != nil {
			return nil, err
		}
		if opts.Stats.Singletons, err = singletonIDs.Count(); err != nil {
			return nil, err
		}
	}
	clusterSpan.End()
	ctx.ObserveStage("cl/clustering", time.Since(phaseStart))
	if opts.Stats != nil {
		opts.Stats.ClusteringTime = time.Since(phaseStart)
	}

	// Phase 3: Joining — Algorithm 1 over the centroids, with
	// type-dependent prefixes and Lemma 5.3 thresholds, repartitioned
	// per §6 when Delta > 0.
	phaseStart = time.Now()
	joinSpan := tr.StartScope("cl/joining")
	defer joinSpan.End()
	ordB := flow.NewBroadcast(ctx, ord)
	// Degenerate regime: when θ+2θc admits zero-overlap centroid
	// pairs, prefix posting lists cannot deliver them — route every
	// centroid through the catch-all group as well (see
	// rankings.CatchAllItem). The centroid kernels are nested loops,
	// so the catch-all group is handled completely.
	needAll := filters.MinOverlap(t.fo, k) == 0
	groups := vj.PrefixGroups(centroidRecords, func(c *Centroid) []rankings.Item {
		p := t.prefixFor(c.Singleton)
		if opts.UniformJoinThreshold {
			p = t.prefixM
		}
		items := ordB.Value().Prefix(c.R, p)
		if needAll {
			items = append(append([]rankings.Item(nil), items...), rankings.CatchAllItem)
		}
		return items
	}, opts.Partitions)
	cpairsRaw := vj.JoinTokenGroups(groups, vj.GroupJoinOptions[*Centroid, CPair]{
		Partitions:        opts.Partitions,
		Delta:             opts.Delta,
		RepartitionFactor: opts.RepartitionFactor,
		SubKey:            func(c *Centroid) int64 { return c.R.ID },
		Self: func(_ rankings.Item, members []*Centroid) []CPair {
			var ks kernelStats
			out := centroidSelfJoin(members, t, opts.UniformJoinThreshold, &ks)
			opts.Stats.addJoinKernel(ks)
			ctx.Filters().Add(ks.filterDelta())
			return out
		},
		Cross: func(_ rankings.Item, a, b []*Centroid) []CPair {
			var ks kernelStats
			out := centroidCrossJoin(a, b, t, opts.UniformJoinThreshold, &ks)
			opts.Stats.addJoinKernel(ks)
			ctx.Filters().Add(ks.filterDelta())
			return out
		},
		Stats: statsJoining(opts.Stats),
	})
	cpairs := flow.Distinct(cpairsRaw, opts.Partitions).Cache()
	nCPairs, err := cpairs.Count()
	if err != nil {
		return nil, err
	}
	joinSpan.End()
	ctx.ObserveStage("cl/joining", time.Since(phaseStart))
	if opts.Stats != nil {
		opts.Stats.CentroidPairs = nCPairs
		opts.Stats.JoiningTime = time.Since(phaseStart)
	}

	// Phase 4: Expansion — Algorithm 2.
	phaseStart = time.Now()
	expandSpan := tr.StartScope("cl/expansion")
	defer expandSpan.End()
	results := expand(expandInputs{
		thresholds:   t,
		opts:         opts,
		filters:      ctx.Filters(),
		dict:         dict,
		clusterPairs: clusterPairsDS,
		clusters:     clusters,
		cpairs:       cpairs,
	})
	final := flow.DistinctBy(results, opts.Partitions, func(p rankings.Pair) rankings.PairKey {
		return p.Key()
	})
	out, err := final.Collect()
	if err != nil {
		return nil, err
	}
	rankings.SortPairs(out)
	expandSpan.End()
	ctx.ObserveStage("cl/expansion", time.Since(phaseStart))
	if opts.Stats != nil {
		opts.Stats.ExpansionTime = time.Since(phaseStart)
		opts.Stats.Results = int64(len(out))
	}
	return out, nil
}

func statsClustering(s *Stats) *vj.Stats {
	if s == nil {
		return nil
	}
	return &s.Clustering
}

func statsJoining(s *Stats) *vj.Stats {
	if s == nil {
		return nil
	}
	return &s.Joining
}
