package rankings_test

import (
	"testing"

	"rankjoin/internal/rankings"
)

func TestNewPairCanonicalizes(t *testing.T) {
	p := rankings.NewPair(9, 3, 5)
	if p.A != 3 || p.B != 9 || p.Dist != 5 {
		t.Errorf("got %v", p)
	}
	if p.Key() != (rankings.PairKey{A: 3, B: 9}) {
		t.Errorf("key %v", p.Key())
	}
}

func TestDedupPairs(t *testing.T) {
	in := []rankings.Pair{
		rankings.NewPair(2, 1, 4),
		rankings.NewPair(1, 2, 4),
		rankings.NewPair(3, 1, 7),
		rankings.NewPair(2, 1, 3), // duplicate with smaller dist wins
	}
	out := rankings.DedupPairs(in)
	want := []rankings.Pair{{A: 1, B: 2, Dist: 3}, {A: 1, B: 3, Dist: 7}}
	if !rankings.SamePairs(out, want) {
		t.Errorf("got %v, want %v", out, want)
	}
	if got := rankings.DedupPairs(nil); len(got) != 0 {
		t.Errorf("dedup(nil) = %v", got)
	}
}

func TestSamePairsAndDiff(t *testing.T) {
	a := []rankings.Pair{{A: 1, B: 2, Dist: 1}, {A: 2, B: 3, Dist: 2}}
	b := []rankings.Pair{{A: 2, B: 3, Dist: 2}, {A: 1, B: 2, Dist: 1}}
	if !rankings.SamePairs(a, b) {
		t.Error("order should not matter")
	}
	c := []rankings.Pair{{A: 1, B: 2, Dist: 1}, {A: 2, B: 4, Dist: 2}}
	if rankings.SamePairs(a, c) {
		t.Error("different sets reported equal")
	}
	onlyA, onlyC := rankings.DiffPairs(a, c)
	if len(onlyA) != 1 || onlyA[0].B != 3 {
		t.Errorf("onlyA = %v", onlyA)
	}
	if len(onlyC) != 1 || onlyC[0].B != 4 {
		t.Errorf("onlyC = %v", onlyC)
	}
}
