package rankings

import "math"

// This file implements the top-k adaptation of Spearman's Footrule
// distance from Fagin, Kumar and Sivakumar, "Comparing Top k Lists"
// (SIAM J. Discrete Math. 2003), as used throughout the paper:
//
//	F(τ, σ) = Σ_{i ∈ Dτ ∪ Dσ} |τ(i) − σ(i)|
//
// with ranks 0..k-1 and the artificial rank l = k for items a ranking
// does not contain. Under that convention the distance is a metric,
// ranges over [0, k(k+1)] for same-length rankings, and is normalized
// to [0, 1] by dividing by k(k+1).

// MaxFootrule returns the largest possible (unnormalized) Footrule
// distance between two top-k rankings of length k: k·(k+1), attained
// exactly by domain-disjoint rankings.
//
//ranklint:allocfree
func MaxFootrule(k int) int { return k * (k + 1) }

// Footrule computes the unnormalized top-k Footrule distance between a
// and b. Both rankings must have the same length k; the artificial rank
// for missing items is l = k.
//
// When both rankings carry their flat position index (see
// Ranking.Index) the distance is computed in one merged pass over the
// two sorted (item, rank) arrays — no per-item lookups at all. Without
// indexes it degrades to O(k²) scans, which is still fast for the small
// k (10–25) the paper considers.
//
//ranklint:allocfree
func Footrule(a, b *Ranking) int {
	if a.idxItems != nil && b.idxItems != nil {
		return footruleMerged(a, b)
	}
	k := len(a.Items)
	d := 0
	for rank, it := range a.Items {
		if rb, ok := b.Pos(it); ok {
			d += abs(rank - int(rb))
		} else {
			d += k - rank
		}
	}
	for rank, it := range b.Items {
		if !a.Contains(it) {
			d += k - rank
		}
	}
	return d
}

// footruleMerged walks the two flat indexes like a sorted-list merge:
// shared items contribute their rank difference, unmatched items the
// missing-item penalty k − rank. One pass, no probes.
//
//ranklint:allocfree
func footruleMerged(a, b *Ranking) int {
	k := len(a.Items)
	ai, ar := a.idxItems, a.idxRanks
	bi, br := b.idxItems, b.idxRanks
	d := 0
	i, j := 0, 0
	for i < len(ai) && j < len(bi) {
		switch {
		case ai[i] == bi[j]:
			d += abs(int(ar[i]) - int(br[j]))
			i++
			j++
		case ai[i] < bi[j]:
			d += k - int(ar[i])
			i++
		default:
			d += k - int(br[j])
			j++
		}
	}
	for ; i < len(ai); i++ {
		d += k - int(ar[i])
	}
	for ; j < len(bi); j++ {
		d += k - int(br[j])
	}
	return d
}

// FootruleNorm computes the Footrule distance normalized to [0, 1] by
// the maximum distance k(k+1).
func FootruleNorm(a, b *Ranking) float64 {
	return float64(Footrule(a, b)) / float64(MaxFootrule(len(a.Items)))
}

// Threshold converts a normalized distance threshold θ ∈ [0,1] into the
// largest unnormalized Footrule distance that still satisfies it:
// ⌊θ·k·(k+1)⌋. A pair (a,b) satisfies the normalized threshold iff
// Footrule(a,b) ≤ Threshold(θ,k).
//
// The floor is epsilon-guarded: when θ·k(k+1) is mathematically an
// exact integer, floating-point rounding can land a hair below it
// (θ = 7/110 · 110 evaluates to 6.999…), and a naive truncation would
// silently drop every boundary-distance pair from the result set.
func Threshold(theta float64, k int) int {
	v := theta * float64(MaxFootrule(k))
	f := math.Floor(v)
	if v-f > 1-thresholdEps {
		f++
	}
	return int(f)
}

// thresholdEps bounds the accumulated rounding error of θ·k(k+1) for
// the k the paper considers (products up to ~10⁶ keep the true error
// below 10⁻⁹ in double precision).
const thresholdEps = 1e-9

// FootruleWithin reports whether Footrule(a,b) ≤ maxDist, terminating
// early once the running sum exceeds the bound. On datasets where most
// pairs are distant this verifies candidates substantially faster than
// computing the full distance. Like Footrule it runs as a merged
// single pass when both rankings are indexed.
//
//ranklint:allocfree
func FootruleWithin(a, b *Ranking, maxDist int) (int, bool) {
	if a.idxItems != nil && b.idxItems != nil {
		return footruleWithinMerged(a, b, maxDist)
	}
	k := len(a.Items)
	d := 0
	for rank, it := range a.Items {
		if rb, ok := b.Pos(it); ok {
			d += abs(rank - int(rb))
		} else {
			d += k - rank
		}
		if d > maxDist {
			return d, false
		}
	}
	for rank, it := range b.Items {
		if !a.Contains(it) {
			d += k - rank
			if d > maxDist {
				return d, false
			}
		}
	}
	return d, true
}

// footruleWithinMerged is footruleMerged with the early-termination
// bound checked after every contribution.
//
//ranklint:allocfree
func footruleWithinMerged(a, b *Ranking, maxDist int) (int, bool) {
	k := len(a.Items)
	ai, ar := a.idxItems, a.idxRanks
	bi, br := b.idxItems, b.idxRanks
	d := 0
	i, j := 0, 0
	for i < len(ai) && j < len(bi) {
		switch {
		case ai[i] == bi[j]:
			d += abs(int(ar[i]) - int(br[j]))
			i++
			j++
		case ai[i] < bi[j]:
			d += k - int(ar[i])
			i++
		default:
			d += k - int(br[j])
			j++
		}
		if d > maxDist {
			return d, false
		}
	}
	for ; i < len(ai); i++ {
		d += k - int(ar[i])
		if d > maxDist {
			return d, false
		}
	}
	for ; j < len(bi); j++ {
		d += k - int(br[j])
		if d > maxDist {
			return d, false
		}
	}
	return d, true
}

// SharedRankDiffExceeds reports whether some item contained in both
// rankings sits at ranks differing by strictly more than bound — the
// core test of the position filter. When both rankings carry their
// flat index the scan is one merged pass; otherwise it probes b per
// item of a.
func SharedRankDiffExceeds(a, b *Ranking, bound int) bool {
	if a.idxItems != nil && b.idxItems != nil {
		ai, ar := a.idxItems, a.idxRanks
		bi, br := b.idxItems, b.idxRanks
		i, j := 0, 0
		for i < len(ai) && j < len(bi) {
			switch {
			case ai[i] == bi[j]:
				if abs(int(ar[i])-int(br[j])) > bound {
					return true
				}
				i++
				j++
			case ai[i] < bi[j]:
				i++
			default:
				j++
			}
		}
		return false
	}
	for rank, it := range a.Items {
		if rb, ok := b.Pos(it); ok && abs(rank-int(rb)) > bound {
			return true
		}
	}
	return false
}

// KendallTau computes Kendall's tau distance with the p = 0 "optimistic"
// penalty for top-k lists (Fagin et al.): the number of item pairs
// (i, j) that are ordered discordantly by the two rankings, counting
// pairs where only one ranking contains both items as discordant when
// their relative order is determined and violated. It is provided as a
// companion measure for applications; the join algorithms use Footrule.
func KendallTau(a, b *Ranking) int {
	a.Index()
	b.Index()
	k := len(a.Items)
	union := make([]Item, 0, 2*k)
	seen := make(map[Item]struct{}, 2*k)
	for _, it := range a.Items {
		union = append(union, it)
		seen[it] = struct{}{}
	}
	for _, it := range b.Items {
		if _, ok := seen[it]; !ok {
			union = append(union, it)
		}
	}
	d := 0
	for x := 0; x < len(union); x++ {
		for y := x + 1; y < len(union); y++ {
			i, j := union[x], union[y]
			ai, aHasI := a.Pos(i)
			aj, aHasJ := a.Pos(j)
			bi, bHasI := b.Pos(i)
			bj, bHasJ := b.Pos(j)
			switch {
			case aHasI && aHasJ && bHasI && bHasJ:
				if (ai < aj) != (bi < bj) {
					d++
				}
			case aHasI && aHasJ && bHasI && !bHasJ:
				// b ranks i, not j => b implies i ahead of j.
				if ai > aj {
					d++
				}
			case aHasI && aHasJ && !bHasI && bHasJ:
				if ai < aj {
					d++
				}
			case bHasI && bHasJ && aHasI && !aHasJ:
				if bi > bj {
					d++
				}
			case bHasI && bHasJ && !aHasI && aHasJ:
				if bi < bj {
					d++
				}
			case aHasI && !aHasJ && !bHasI && bHasJ:
				// i only in a, j only in b: discordant (case 4,
				// p-optimistic counts it as 1).
				d++
			case !aHasI && aHasJ && bHasI && !bHasJ:
				d++
			}
		}
	}
	return d
}

//ranklint:allocfree
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
