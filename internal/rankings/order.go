package rankings

import "sort"

// This file implements the global frequency ordering of items that both
// the VJ adaptation (§4) and the CL pipeline's Ordering phase (§5) rely
// on: items are sorted by increasing frequency of appearance across the
// dataset, so that rare items land in ranking prefixes and posting
// lists stay short. The rankings themselves keep their original rank
// order — the canonical order only decides which items form the prefix.

// ItemCounts tallies how often each item appears across the dataset.
func ItemCounts(rs []*Ranking) map[Item]int64 {
	counts := make(map[Item]int64)
	for _, r := range rs {
		for _, it := range r.Items {
			counts[it]++
		}
	}
	return counts
}

// Order is a global canonical ordering of items. Smaller order value
// means rarer item (ties broken by item id), i.e. earlier in the
// canonical sort used for prefix filtering.
type Order struct {
	rank map[Item]int32
}

// NewOrder builds the canonical ordering from item frequencies:
// ascending frequency, ties broken by ascending item id.
func NewOrder(counts map[Item]int64) *Order {
	items := make([]Item, 0, len(counts))
	for it := range counts {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		ci, cj := counts[items[i]], counts[items[j]]
		if ci != cj {
			return ci < cj
		}
		return items[i] < items[j]
	})
	rank := make(map[Item]int32, len(items))
	for i, it := range items {
		rank[it] = int32(i)
	}
	return &Order{rank: rank}
}

// OrderFromDataset is shorthand for NewOrder(ItemCounts(rs)).
func OrderFromDataset(rs []*Ranking) *Order {
	return NewOrder(ItemCounts(rs))
}

// Len returns the number of distinct items in the ordering.
func (o *Order) Len() int { return len(o.rank) }

// Rank returns the canonical position of item. Items unknown to the
// ordering (possible when the ordering was built on a different
// dataset) sort last, by item id.
func (o *Order) Rank(item Item) int32 {
	if r, ok := o.rank[item]; ok {
		return r
	}
	return int32(len(o.rank)) + item
}

// Canonical returns r's items sorted by the canonical order: rarest
// item first. The returned slice is freshly allocated; r is unchanged.
func (o *Order) Canonical(r *Ranking) []Item {
	items := make([]Item, len(r.Items))
	copy(items, r.Items)
	sort.Slice(items, func(i, j int) bool {
		return o.Rank(items[i]) < o.Rank(items[j])
	})
	return items
}

// Prefix returns the first p items of r in canonical order (all items
// when p ≥ k). These are the items indexed by prefix filtering.
func (o *Order) Prefix(r *Ranking, p int) []Item {
	c := o.Canonical(r)
	if p >= len(c) {
		return c
	}
	return c[:p]
}

// IdentityOrder returns an ordering that sorts items by their id,
// standing in for "no reordering" in the ordering-phase ablation.
func IdentityOrder() *Order { return &Order{rank: map[Item]int32{}} }
