package rankings_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func TestOrderSortsByFrequencyThenID(t *testing.T) {
	ds := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3}),
		rankings.MustNew(1, []rankings.Item{2, 3, 4}),
		rankings.MustNew(2, []rankings.Item{3, 4, 5}),
	}
	// freq: 1→1, 2→2, 3→3, 4→2, 5→1. Canonical: 1,5 (freq 1, id asc),
	// then 2,4 (freq 2), then 3.
	o := rankings.OrderFromDataset(ds)
	want := []rankings.Item{1, 5, 2, 4, 3}
	for i, it := range want {
		if got := o.Rank(it); got != int32(i) {
			t.Errorf("Rank(%d) = %d, want %d", it, got, i)
		}
	}
	if o.Len() != 5 {
		t.Errorf("Len = %d, want 5", o.Len())
	}
}

func TestCanonicalPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := testutil.RandDataset(rng, 30, 10, 60)
	o := rankings.OrderFromDataset(ds)
	for _, r := range ds {
		c := o.Canonical(r)
		if len(c) != r.K() {
			t.Fatalf("canonical length %d, want %d", len(c), r.K())
		}
		have := map[rankings.Item]int{}
		for _, it := range r.Items {
			have[it]++
		}
		for _, it := range c {
			have[it]--
		}
		for it, n := range have {
			if n != 0 {
				t.Fatalf("canonical of %v lost/gained item %d", r, it)
			}
		}
		// Canonical order must be non-decreasing in Order.Rank.
		for i := 1; i < len(c); i++ {
			if o.Rank(c[i-1]) > o.Rank(c[i]) {
				t.Fatalf("canonical not sorted by order: %v", c)
			}
		}
		// The original ranking must be untouched.
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrefixClamps(t *testing.T) {
	r := rankings.MustNew(0, []rankings.Item{4, 2, 9})
	o := rankings.OrderFromDataset([]*rankings.Ranking{r})
	if got := len(o.Prefix(r, 2)); got != 2 {
		t.Errorf("prefix(2) length %d", got)
	}
	if got := len(o.Prefix(r, 10)); got != 3 {
		t.Errorf("prefix(10) length %d", got)
	}
}

func TestUnknownItemsSortLast(t *testing.T) {
	ds := []*rankings.Ranking{rankings.MustNew(0, []rankings.Item{1, 2})}
	o := rankings.OrderFromDataset(ds)
	if o.Rank(99) <= o.Rank(1) || o.Rank(99) <= o.Rank(2) {
		t.Error("unknown item does not sort after known items")
	}
	if o.Rank(98) >= o.Rank(99) {
		t.Error("unknown items not ordered by id")
	}
}

func TestIdentityOrder(t *testing.T) {
	o := rankings.IdentityOrder()
	r := rankings.MustNew(0, []rankings.Item{5, 1, 3})
	c := o.Canonical(r)
	if c[0] != 1 || c[1] != 3 || c[2] != 5 {
		t.Errorf("identity canonical = %v, want [1 3 5]", c)
	}
}
