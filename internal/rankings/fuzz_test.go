package rankings_test

import (
	"strings"
	"testing"

	"rankjoin/internal/rankings"
)

// FuzzParseLine: the parser must never panic and must only accept lines
// that round-trip.
func FuzzParseLine(f *testing.F) {
	for _, seed := range []string{
		"1 2 3", "7: 4 5 6", "1,2,3", "", ":", "a b", "9:", "-1 -2",
		"1 1", "2147483647 0", "9999999999999", "5:\t1,  2 3 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		r, err := rankings.ParseLine(line, 42)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("parser accepted invalid ranking %v: %v", r, err)
		}
		var sb strings.Builder
		if err := rankings.Write(&sb, []*rankings.Ranking{r}); err != nil {
			t.Fatal(err)
		}
		back, err := rankings.Read(strings.NewReader(sb.String()))
		if err != nil || len(back) != 1 {
			t.Fatalf("round trip failed: %v %v", back, err)
		}
		if back[0].ID != r.ID || !rankings.Equal(back[0], r) {
			t.Fatalf("round trip changed %v to %v", r, back[0])
		}
	})
}

// FuzzFootruleMetric: any pair of parsed rankings of equal length must
// satisfy the metric axioms and the distance bounds.
func FuzzFootruleMetric(f *testing.F) {
	f.Add("1 2 3", "3 2 1")
	f.Add("5 6 7", "8 9 10")
	f.Add("1 2", "2 1")
	f.Fuzz(func(t *testing.T, la, lb string) {
		a, errA := rankings.ParseLine(la, 0)
		b, errB := rankings.ParseLine(lb, 1)
		if errA != nil || errB != nil || a.K() != b.K() {
			return
		}
		d := rankings.Footrule(a, b)
		if d != rankings.Footrule(b, a) {
			t.Fatal("asymmetric")
		}
		if d < 0 || d > rankings.MaxFootrule(a.K()) {
			t.Fatalf("distance %d out of range", d)
		}
		if (d == 0) != rankings.Equal(a, b) {
			t.Fatalf("identity violated: d=%d", d)
		}
		if got, ok := rankings.FootruleWithin(a, b, d); !ok || got != d {
			t.Fatalf("FootruleWithin(d) inconsistent: %d %v", got, ok)
		}
		if _, ok := rankings.FootruleWithin(a, b, d-1); ok && d > 0 {
			t.Fatal("FootruleWithin(d-1) accepted")
		}
	})
}
