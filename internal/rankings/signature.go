package rankings

import "math/bits"

// Item signatures: every ranking folds its item set into a 128-bit
// bitset by hashing each item onto one of 128 bit positions. Signatures
// support a constant-time *upper bound* on the item overlap of two
// rankings (two ANDs + popcounts, see filters.OverlapUpperBound), which
// converts into an admissible Footrule lower bound that rejects most
// distant candidate pairs before any merged-pass kernel runs.
//
// 128 bits is a deliberate width: with top-k lists of k ≤ 25 items, two
// disjoint item sets share ≈ k²/128 bits by collision alone (≈ 0.8 at
// k = 10, versus 1.6 in a single 64-bit word). The collision tail is
// what survives the prefilter, so halving it roughly halves the kernel
// invocations of a bound-driven kNN sweep.
//
// The hash is a fixed multiplicative scramble: deterministic across
// processes, so signatures can be compared between rankings built
// anywhere (shards, batch-join partitions, serialized snapshots).

// Sig is a 128-bit item-signature bitset, stored as two 64-bit words.
// The zero Sig is the signature of the empty item set.
type Sig struct {
	Lo, Hi uint64
}

// SharedBits counts the bits set in both signatures (the popcount of
// their intersection) — the core of the overlap upper bound.
func (s Sig) SharedBits(t Sig) int {
	return bits.OnesCount64(s.Lo&t.Lo) + bits.OnesCount64(s.Hi&t.Hi)
}

// OnesCount counts the bits set in the signature.
//
//ranklint:allocfree
func (s Sig) OnesCount() int {
	return bits.OnesCount64(s.Lo) + bits.OnesCount64(s.Hi)
}

// sigBit maps an item onto its signature bit position in [0, 128).
// Knuth's multiplicative hash; the top seven bits of the product are
// well mixed even for the small sequential item ids test datasets use.
//
//ranklint:allocfree
func sigBit(it Item) uint {
	return uint(uint32(it)*0x9E3779B1) >> 25
}

// computeSignature folds a raw item slice into (bitset, popcount).
//
//ranklint:allocfree
func computeSignature(items []Item) (Sig, int) {
	var sig Sig
	for _, it := range items {
		b := sigBit(it)
		if b < 64 {
			sig.Lo |= 1 << b
		} else {
			sig.Hi |= 1 << (b - 64)
		}
	}
	return sig, sig.OnesCount()
}

// Signature returns the ranking's 128-bit item signature and its
// popcount. Indexed rankings (see Index) answer from the cached value;
// unindexed rankings compute it on the fly without caching, keeping
// the accessor safe for concurrent use on shared rankings.
//
//ranklint:allocfree
func (r *Ranking) Signature() (sig Sig, popcount int) {
	if r.idxItems != nil {
		return r.sig, int(r.sigPop)
	}
	return computeSignature(r.Items)
}
