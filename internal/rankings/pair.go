package rankings

import (
	"fmt"
	"sort"
)

// Pair is one similarity-join result: an unordered pair of ranking ids
// stored in canonical (A < B) form together with their unnormalized
// Footrule distance.
type Pair struct {
	A, B int64
	Dist int
}

// NewPair builds a canonical pair from two ranking ids.
func NewPair(a, b int64, dist int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b, Dist: dist}
}

// Key returns a comparable identity for the pair that ignores the
// distance, for use as a dedup or shuffle key.
func (p Pair) Key() PairKey { return PairKey{A: p.A, B: p.B} }

// PairKey identifies an unordered pair of rankings.
type PairKey struct{ A, B int64 }

// String renders the pair as "(a,b,d)".
func (p Pair) String() string { return fmt.Sprintf("(%d,%d,%d)", p.A, p.B, p.Dist) }

// SortPairs orders pairs by (A, B) for deterministic output and
// comparison in tests.
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// DedupPairs sorts pairs and removes duplicates in place, mirroring the
// final duplicate-elimination phase every distributed algorithm in the
// paper ends with. Among duplicates the smallest recorded distance is
// kept (duplicates always carry the same true distance; the min guards
// against callers mixing verified and bounded entries).
func DedupPairs(ps []Pair) []Pair {
	if len(ps) == 0 {
		return ps
	}
	SortPairs(ps)
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if p.A == last.A && p.B == last.B {
			if p.Dist < last.Dist {
				last.Dist = p.Dist
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// SamePairs reports whether the two pair sets contain exactly the same
// unordered id pairs (distances included), regardless of input order.
func SamePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]Pair(nil), a...)
	bc := append([]Pair(nil), b...)
	SortPairs(ac)
	SortPairs(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

// DiffPairs returns the pairs present in a but not in b and vice versa,
// matching on ids only. Useful for debugging algorithm discrepancies.
func DiffPairs(a, b []Pair) (onlyA, onlyB []Pair) {
	inB := make(map[PairKey]struct{}, len(b))
	for _, p := range b {
		inB[p.Key()] = struct{}{}
	}
	inA := make(map[PairKey]struct{}, len(a))
	for _, p := range a {
		inA[p.Key()] = struct{}{}
	}
	for _, p := range a {
		if _, ok := inB[p.Key()]; !ok {
			onlyA = append(onlyA, p)
		}
	}
	for _, p := range b {
		if _, ok := inA[p.Key()]; !ok {
			onlyB = append(onlyB, p)
		}
	}
	return onlyA, onlyB
}
