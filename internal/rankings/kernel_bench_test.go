package rankings_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// benchPairs draws a deterministic pool of indexed ranking pairs over a
// domain of 2k items — roughly the overlap mix a posting-list partition
// hands the verification kernel.
func benchPairs(k int) (as, bs []*rankings.Ranking) {
	rng := rand.New(rand.NewSource(42))
	as = make([]*rankings.Ranking, 256)
	bs = make([]*rankings.Ranking, 256)
	for i := range as {
		as[i] = testutil.RandRanking(rng, int64(i), k, 2*k)
		bs[i] = testutil.RandRanking(rng, int64(1000+i), k, 2*k)
	}
	return as, bs
}

// BenchmarkFootrule measures the full-distance kernel — the cost paid
// once per verified candidate pair in every join algorithm.
func BenchmarkFootrule(b *testing.B) {
	for _, k := range []int{10, 25} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			as, bs := benchPairs(k)
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				j := i & 255
				sink += rankings.Footrule(as[j], bs[j])
			}
			_ = sink
		})
	}
}

// BenchmarkFootruleWithin measures the early-terminating verifier at a
// representative θ=0.3 bound (most pairs exceed it and bail out early).
func BenchmarkFootruleWithin(b *testing.B) {
	for _, k := range []int{10, 25} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			as, bs := benchPairs(k)
			bound := rankings.Threshold(0.3, k)
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				j := i & 255
				d, _ := rankings.FootruleWithin(as[j], bs[j], bound)
				sink += d
			}
			_ = sink
		})
	}
}

// BenchmarkPos measures the raw position lookup backing both kernels.
func BenchmarkPos(b *testing.B) {
	for _, k := range []int{10, 25} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			as, _ := benchPairs(k)
			b.ResetTimer()
			var sink int32
			for i := 0; i < b.N; i++ {
				r := as[i&255]
				p, _ := r.Pos(r.Items[i%k])
				sink += p
			}
			_ = sink
		})
	}
}
