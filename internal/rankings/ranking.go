// Package rankings defines fixed-length top-k rankings and the top-k
// adaptation of Spearman's Footrule distance (Fagin et al.), which the
// similarity-join algorithms in this repository operate on.
//
// A top-k ranking is a bijection from a domain of k items onto the rank
// positions 0..k-1, where position 0 is the best (top) rank. Two rankings
// need not share a domain. Items are represented by integer ids.
package rankings

import (
	"errors"
	"fmt"
	"sort"
)

// Item identifies a ranked entity (a token, movie, product, ...).
type Item = int32

// CatchAllItem is a reserved token the join pipelines emit for every
// ranking when the distance threshold is so loose that two rankings
// can be within it while sharing no item (MinOverlap == 0, i.e.
// θ + 2θc ≥ 1). Prefix filtering is incomplete in that degenerate
// regime — disjoint rankings meet no posting list — so the catch-all
// group pairs everything with everything. Real item ids never take
// this value (it is the minimum int32).
const CatchAllItem Item = -1 << 31

// Ranking is a fixed-length top-k list. Items[r] is the item placed at
// rank r (0-based; rank 0 is the top position). A ranking contains no
// duplicate items.
type Ranking struct {
	// ID uniquely identifies the ranking within a dataset.
	ID int64
	// Items holds the ranked items, best first.
	Items []Item

	// idxItems/idxRanks form the flat position index: the ranking's
	// items sorted ascending, with idxRanks[i] holding the rank of
	// idxItems[i]. For the small k of top-k lists (k ≤ 25 throughout
	// the paper) searching a sorted array beats a hash map probe —
	// no hashing, no pointer chasing — and the sorted layout lets the
	// Footrule kernels walk two rankings in one merged pass. Built by
	// Index.
	idxItems []Item
	idxRanks []int32

	// sig/sigPop cache the 128-bit item signature (see signature.go),
	// filled in by Index alongside the position index.
	sig    Sig
	sigPop int32
}

// New constructs a ranking and validates that items are duplicate-free.
func New(id int64, items []Item) (*Ranking, error) {
	r := &Ranking{ID: id, Items: items}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustNew is New for tests and examples with known-good data; it panics
// on invalid input.
func MustNew(id int64, items []Item) *Ranking {
	r, err := New(id, items)
	if err != nil {
		panic(err)
	}
	return r
}

// ErrDuplicateItem reports a ranking that mentions the same item twice.
var ErrDuplicateItem = errors.New("rankings: duplicate item in ranking")

// ErrEmpty reports a ranking without items.
var ErrEmpty = errors.New("rankings: empty ranking")

// Validate checks the structural invariants of a top-k list: at least
// one item and no duplicates.
func (r *Ranking) Validate() error {
	if len(r.Items) == 0 {
		return fmt.Errorf("ranking %d: %w", r.ID, ErrEmpty)
	}
	seen := make(map[Item]struct{}, len(r.Items))
	for _, it := range r.Items {
		if _, dup := seen[it]; dup {
			return fmt.Errorf("ranking %d: item %d: %w", r.ID, it, ErrDuplicateItem)
		}
		seen[it] = struct{}{}
	}
	return nil
}

// K returns the length of the ranking.
//
//ranklint:allocfree
func (r *Ranking) K() int { return len(r.Items) }

// Index builds the flat (item, rank) position index. Calling it once
// after load makes subsequent Pos (and therefore Footrule) calls
// allocation-free and unlocks the merged single-pass Footrule kernels.
// It is idempotent. Index is not safe for concurrent use with itself;
// build indexes before sharing a ranking across goroutines.
//
//ranklint:allocfree
func (r *Ranking) Index() {
	if r.idxItems != nil {
		return
	}
	n := len(r.Items)
	items := make([]Item, n)
	ranks := make([]int32, n)
	copy(items, r.Items)
	for i := range ranks {
		ranks[i] = int32(i)
	}
	// Tandem insertion sort: for k ≤ 25 this beats sort.Sort's
	// interface dispatch and allocates nothing beyond the two arrays.
	for i := 1; i < n; i++ {
		it, rk := items[i], ranks[i]
		j := i - 1
		for j >= 0 && items[j] > it {
			items[j+1], ranks[j+1] = items[j], ranks[j]
			j--
		}
		items[j+1], ranks[j+1] = it, rk
	}
	sig, pop := computeSignature(items)
	r.sig, r.sigPop = sig, int32(pop)
	r.idxItems, r.idxRanks = items, ranks
}

// Indexed reports whether the position index has been built.
func (r *Ranking) Indexed() bool { return r.idxItems != nil }

// Pos returns the rank of item and whether the ranking contains it.
//
//ranklint:allocfree
func (r *Ranking) Pos(item Item) (int32, bool) {
	if r.idxItems == nil {
		// Small k: a linear scan avoids building the index for
		// throwaway rankings.
		for rank, it := range r.Items {
			if it == item {
				return int32(rank), true
			}
		}
		return 0, false
	}
	// Linear scan over the sorted index with an early stop. For the
	// k ≤ 25 the paper considers, the pipelined sequential loads beat
	// both a hash probe (hashing latency) and binary search (a serial
	// chain of dependent loads).
	for i, it := range r.idxItems {
		if it >= item {
			if it == item {
				return r.idxRanks[i], true
			}
			return 0, false
		}
	}
	return 0, false
}

// Contains reports whether the ranking mentions item.
//
//ranklint:allocfree
func (r *Ranking) Contains(item Item) bool {
	_, ok := r.Pos(item)
	return ok
}

// Domain returns the ranking's items in ascending item-id order.
func (r *Ranking) Domain() []Item {
	if r.idxItems != nil {
		return append([]Item(nil), r.idxItems...)
	}
	d := make([]Item, len(r.Items))
	copy(d, r.Items)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d
}

// Overlap counts the items the two rankings share.
func Overlap(a, b *Ranking) int {
	short, long := a, b
	if len(short.Items) > len(long.Items) {
		short, long = long, short
	}
	long.Index()
	n := 0
	for _, it := range short.Items {
		if long.Contains(it) {
			n++
		}
	}
	return n
}

// Equal reports whether the two rankings place the same items at the
// same ranks (ids are ignored).
func Equal(a, b *Ranking) bool {
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy sharing no state with r.
func (r *Ranking) Clone() *Ranking {
	items := make([]Item, len(r.Items))
	copy(items, r.Items)
	return &Ranking{ID: r.ID, Items: items}
}

// String renders the ranking as "id:[i0 i1 ...]".
func (r *Ranking) String() string {
	return fmt.Sprintf("%d:%v", r.ID, r.Items)
}
