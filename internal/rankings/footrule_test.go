package rankings_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestPaperExamples pins the worked examples of the paper: Table 2's
// sample dataset with F(τ1, τ2) = 16, and the Lemma 4.1 illustration of
// Figure 1 (k = 5, p = 2, F = 8).
func TestPaperExamples(t *testing.T) {
	t1 := rankings.MustNew(1, []rankings.Item{2, 5, 4, 3, 1})
	t2 := rankings.MustNew(2, []rankings.Item{1, 4, 5, 9, 0})
	t3 := rankings.MustNew(3, []rankings.Item{0, 8, 5, 7, 3})

	if got := rankings.Footrule(t1, t2); got != 16 {
		t.Errorf("F(t1,t2) = %d, want 16", got)
	}
	if got := rankings.Footrule(t1, t1); got != 0 {
		t.Errorf("F(t1,t1) = %d, want 0", got)
	}
	if a, b := rankings.Footrule(t1, t3), rankings.Footrule(t3, t1); a != b {
		t.Errorf("asymmetric: %d vs %d", a, b)
	}

	// Figure 1: same domain, each of the first p=2 items displaced into
	// the next p positions => F = 2p² = 8.
	ti := rankings.MustNew(10, []rankings.Item{1, 2, 3, 4, 5})
	tj := rankings.MustNew(11, []rankings.Item{3, 4, 1, 2, 5})
	if got := rankings.Footrule(ti, tj); got != 8 {
		t.Errorf("figure 1 distance = %d, want 8", got)
	}
}

func TestMaxFootruleDisjoint(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10, 25} {
		a := make([]rankings.Item, k)
		b := make([]rankings.Item, k)
		for i := 0; i < k; i++ {
			a[i] = rankings.Item(i)
			b[i] = rankings.Item(i + k)
		}
		ra, rb := rankings.MustNew(0, a), rankings.MustNew(1, b)
		if got, want := rankings.Footrule(ra, rb), rankings.MaxFootrule(k); got != want {
			t.Errorf("k=%d: disjoint distance %d, want max %d", k, got, want)
		}
		if got := rankings.FootruleNorm(ra, rb); got != 1 {
			t.Errorf("k=%d: normalized disjoint distance %v, want 1", k, got)
		}
	}
}

func TestFootruleIdentityOfIndiscernibles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(12)
		a := testutil.RandRanking(rng, 0, k, 3*k)
		b := testutil.RandRanking(rng, 1, k, 3*k)
		d := rankings.Footrule(a, b)
		if (d == 0) != rankings.Equal(a, b) {
			t.Fatalf("d=0 iff equal violated: d=%d a=%v b=%v", d, a, b)
		}
	}
}

func TestFootruleSymmetryQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed ^ rng.Int63()))
		k := 1 + local.Intn(15)
		a := testutil.RandRanking(local, 0, k, 2*k+local.Intn(3*k))
		b := testutil.RandRanking(local, 1, k, 2*k+local.Intn(3*k))
		return rankings.Footrule(a, b) == rankings.Footrule(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFootruleTriangleInequalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		k := 1 + local.Intn(12)
		dom := k + 1 + local.Intn(3*k)
		a := testutil.RandRanking(local, 0, k, dom)
		b := testutil.RandRanking(local, 1, k, dom)
		c := testutil.RandRanking(local, 2, k, dom)
		dab := rankings.Footrule(a, b)
		dbc := rankings.Footrule(b, c)
		dac := rankings.Footrule(a, c)
		return dac <= dab+dbc && dab <= dac+dbc && dbc <= dab+dac
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFootruleRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		k := 1 + local.Intn(20)
		dom := k + local.Intn(4*k)
		a := testutil.RandRanking(local, 0, k, dom)
		b := testutil.RandRanking(local, 1, k, dom)
		d := rankings.Footrule(a, b)
		return d >= 0 && d <= rankings.MaxFootrule(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFootruleWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(12)
		dom := k + rng.Intn(3*k)
		a := testutil.RandRanking(rng, 0, k, dom)
		b := testutil.RandRanking(rng, 1, k, dom)
		d := rankings.Footrule(a, b)
		bound := rng.Intn(rankings.MaxFootrule(k) + 1)
		got, ok := rankings.FootruleWithin(a, b, bound)
		if ok != (d <= bound) {
			t.Fatalf("within(%d): got ok=%v, full distance %d", bound, ok, d)
		}
		if ok && got != d {
			t.Fatalf("within returned %d, full distance %d", got, d)
		}
	}
}

func TestThresholdConversion(t *testing.T) {
	// A pair satisfies θ (normalized) iff its unnormalized distance is
	// ≤ Threshold(θ, k).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(12)
		a := testutil.RandRanking(rng, 0, k, 3*k)
		b := testutil.RandRanking(rng, 1, k, 3*k)
		theta := rng.Float64()
		f := rankings.Threshold(theta, k)
		if (rankings.Footrule(a, b) <= f) != (rankings.FootruleNorm(a, b) <= theta) {
			// Allow the boundary case introduced by floating point on
			// exact multiples: recompute strictly.
			d := rankings.Footrule(a, b)
			if float64(d) != theta*float64(rankings.MaxFootrule(k)) {
				t.Fatalf("threshold mismatch: d=%d θ=%v F=%d", d, theta, f)
			}
		}
	}
}

func TestKendallTauBasics(t *testing.T) {
	a := rankings.MustNew(0, []rankings.Item{1, 2, 3})
	b := rankings.MustNew(1, []rankings.Item{3, 2, 1})
	if got := rankings.KendallTau(a, b); got != 3 {
		t.Errorf("reversal tau = %d, want 3", got)
	}
	if got := rankings.KendallTau(a, a); got != 0 {
		t.Errorf("self tau = %d, want 0", got)
	}
	c := rankings.MustNew(2, []rankings.Item{4, 5, 6})
	// Disjoint: every cross pair (i from a, j from c) is discordant
	// (case 4): 3*3 = 9.
	if got := rankings.KendallTau(a, c); got != 9 {
		t.Errorf("disjoint tau = %d, want 9", got)
	}
	if x, y := rankings.KendallTau(a, b), rankings.KendallTau(b, a); x != y {
		t.Errorf("tau asymmetric: %d vs %d", x, y)
	}
}
