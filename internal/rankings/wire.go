package rankings

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Gob wire format for Ranking. The position index, signature and
// popcount are unexported, so without a custom codec encoding/gob
// would silently strip them: a ranking shipped to a peer would arrive
// unindexed and every merged-pass kernel on the far side would fall
// back to its quadratic path with the signature prefilter disabled.
// The codec therefore serializes only the identity (ID, Items,
// indexed-bit) and rebuilds the derived state on decode — derived
// state is a pure function of Items, so reconstruction is exact and
// the wire stays minimal.

// wireRankingVersion tags the Ranking gob payload so future layout
// changes can be detected instead of misparsed.
const wireRankingVersion = 1

// GobEncode implements gob.GobEncoder. Layout: version byte, ID
// (varint), indexed flag byte, item count (uvarint), items (varints).
func (r *Ranking) GobEncode() ([]byte, error) {
	buf := make([]byte, 0, 2+binary.MaxVarintLen64+(len(r.Items)+1)*binary.MaxVarintLen32)
	buf = append(buf, wireRankingVersion)
	buf = binary.AppendVarint(buf, r.ID)
	indexed := byte(0)
	if r.Indexed() {
		indexed = 1
	}
	buf = append(buf, indexed)
	buf = binary.AppendUvarint(buf, uint64(len(r.Items)))
	for _, it := range r.Items {
		buf = binary.AppendVarint(buf, int64(it))
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder, rebuilding the position index
// and signature when the source ranking carried them.
func (r *Ranking) GobDecode(data []byte) error {
	rd := bytes.NewReader(data)
	version, err := rd.ReadByte()
	if err != nil {
		return fmt.Errorf("rankings: decode ranking: %w", err)
	}
	if version != wireRankingVersion {
		return fmt.Errorf("rankings: decode ranking: unsupported wire version %d", version)
	}
	id, err := binary.ReadVarint(rd)
	if err != nil {
		return fmt.Errorf("rankings: decode ranking id: %w", err)
	}
	indexed, err := rd.ReadByte()
	if err != nil {
		return fmt.Errorf("rankings: decode ranking flags: %w", err)
	}
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("rankings: decode ranking length: %w", err)
	}
	if n > uint64(rd.Len()) { // every item takes ≥ 1 byte
		return fmt.Errorf("rankings: decode ranking: length %d exceeds payload", n)
	}
	items := make([]Item, n)
	for i := range items {
		v, err := binary.ReadVarint(rd)
		if err != nil {
			return fmt.Errorf("rankings: decode ranking item %d: %w", i, err)
		}
		items[i] = Item(v)
	}
	if rd.Len() != 0 {
		return fmt.Errorf("rankings: decode ranking: %d trailing bytes", rd.Len())
	}
	*r = Ranking{ID: id, Items: items}
	if indexed != 0 {
		r.Index()
	}
	return nil
}
