package rankings

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format mirrors the preprocessed benchmark files used in
// the paper's experimental study: one ranking per line, whitespace- (or
// comma-) separated item ids, best-ranked item first. Ranking ids are
// assigned by line number unless the line carries an explicit
// "id:" prefix.

// ParseLine parses a single ranking line. Accepted forms:
//
//	"2 5 4 3 1"        items only; id taken from the id argument
//	"7: 2 5 4 3 1"     explicit id
//	"2,5,4,3,1"        comma separated
func ParseLine(line string, id int64) (*Ranking, error) {
	line = strings.TrimSpace(line)
	if i := strings.IndexByte(line, ':'); i >= 0 {
		explicit, err := strconv.ParseInt(strings.TrimSpace(line[:i]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rankings: bad id %q: %w", line[:i], err)
		}
		id = explicit
		line = line[i+1:]
	}
	fields := strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("rankings: line %d: %w", id, ErrEmpty)
	}
	items := make([]Item, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("rankings: bad item %q: %w", f, err)
		}
		items = append(items, Item(v))
	}
	return New(id, items)
}

// Read parses a whole dataset from r, one ranking per line, skipping
// blank lines and lines starting with '#'. Ids default to the 0-based
// index of the ranking within the stream.
func Read(r io.Reader) ([]*Ranking, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []*Ranking
	var id int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rk, err := ParseLine(line, id)
		if err != nil {
			return nil, err
		}
		out = append(out, rk)
		id++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rankings: read: %w", err)
	}
	return out, nil
}

// Write serializes the dataset in the format accepted by Read, with
// explicit ids so round-trips preserve identity.
func Write(w io.Writer, rs []*Ranking) error {
	bw := bufio.NewWriter(w)
	for _, r := range rs {
		if _, err := fmt.Fprintf(bw, "%d:", r.ID); err != nil {
			return fmt.Errorf("rankings: write: %w", err)
		}
		for i, it := range r.Items {
			sep := " "
			if i == 0 {
				sep = " "
			}
			if _, err := fmt.Fprintf(bw, "%s%d", sep, it); err != nil {
				return fmt.Errorf("rankings: write: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("rankings: write: %w", err)
		}
	}
	return bw.Flush()
}

// IndexAll builds the position index of every ranking, so that
// subsequent distance computations across goroutines are read-only.
func IndexAll(rs []*Ranking) {
	for _, r := range rs {
		r.Index()
	}
}
