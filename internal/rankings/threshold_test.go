package rankings_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestThresholdExactIntegerBoundaries: whenever θ·k(k+1) is
// mathematically an exact integer d (θ = d / k(k+1)), Threshold must
// return d. The naive truncation int(θ·k(k+1)) under-counted 73 such
// boundaries across k ∈ {4,5,10,19,25} (e.g. θ = 7/110 → 6), silently
// dropping every pair at exactly the threshold distance.
func TestThresholdExactIntegerBoundaries(t *testing.T) {
	for _, k := range []int{1, 2, 4, 5, 10, 19, 25, 50} {
		m := rankings.MaxFootrule(k)
		for d := 0; d <= m; d++ {
			theta := float64(d) / float64(m)
			if got := rankings.Threshold(theta, k); got != d {
				t.Fatalf("Threshold(%d/%d, %d) = %d, want %d", d, m, k, got, d)
			}
		}
	}
}

// TestThresholdBetweenBoundaries: θ strictly between two integer
// boundaries must floor to the lower one — the epsilon guard must not
// overshoot.
func TestThresholdBetweenBoundaries(t *testing.T) {
	for _, k := range []int{2, 5, 10, 25} {
		m := rankings.MaxFootrule(k)
		for d := 1; d <= m; d++ {
			theta := (float64(d) - 0.5) / float64(m)
			if got := rankings.Threshold(theta, k); got != d-1 {
				t.Fatalf("Threshold((%d-0.5)/%d, %d) = %d, want %d", d, m, k, got, d-1)
			}
		}
	}
}

// TestThresholdMonotone: Threshold is non-decreasing in θ and pinned at
// the extremes.
func TestThresholdMonotone(t *testing.T) {
	for _, k := range []int{5, 10, 25} {
		m := rankings.MaxFootrule(k)
		if got := rankings.Threshold(0, k); got != 0 {
			t.Errorf("Threshold(0, %d) = %d", k, got)
		}
		if got := rankings.Threshold(1, k); got != m {
			t.Errorf("Threshold(1, %d) = %d, want %d", k, got, m)
		}
		prev := 0
		for i := 0; i <= 1000; i++ {
			cur := rankings.Threshold(float64(i)/1000, k)
			if cur < prev {
				t.Fatalf("k=%d: Threshold decreased at θ=%v: %d < %d", k, float64(i)/1000, cur, prev)
			}
			prev = cur
		}
	}
}

// TestSharedRankDiffExceedsMatchesProbe: the merged-pass position
// filter agrees with the definition (max |τ(i)−σ(i)| over shared
// items), indexed or not.
func TestSharedRankDiffExceedsMatchesProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(15)
		dom := k + rng.Intn(3*k)
		a := testutil.RandRanking(rng, 0, k, dom)
		b := testutil.RandRanking(rng, 1, k, dom)
		maxDiff := -1
		for ra, it := range a.Items {
			if rb, ok := b.Pos(it); ok {
				d := ra - int(rb)
				if d < 0 {
					d = -d
				}
				if d > maxDiff {
					maxDiff = d
				}
			}
		}
		for bound := 0; bound <= k; bound++ {
			want := maxDiff > bound
			if got := rankings.SharedRankDiffExceeds(a, b, bound); got != want {
				t.Fatalf("indexed: bound=%d got=%v want=%v (maxDiff=%d a=%v b=%v)",
					bound, got, want, maxDiff, a, b)
			}
			// Unindexed fallback path.
			ua := rankings.MustNew(10, a.Items)
			ub := rankings.MustNew(11, b.Items)
			if got := rankings.SharedRankDiffExceeds(ua, ub, bound); got != want {
				t.Fatalf("unindexed: bound=%d got=%v want=%v", bound, got, want)
			}
		}
	}
}
