package rankings_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func TestNewValidation(t *testing.T) {
	if _, err := rankings.New(1, []rankings.Item{1, 2, 1}); err == nil {
		t.Error("duplicate items accepted")
	}
	if _, err := rankings.New(1, nil); err == nil {
		t.Error("empty ranking accepted")
	}
	r, err := rankings.New(7, []rankings.Item{3, 1, 2})
	if err != nil {
		t.Fatalf("valid ranking rejected: %v", err)
	}
	if r.K() != 3 || r.ID != 7 {
		t.Errorf("unexpected ranking %v", r)
	}
}

func TestPosWithAndWithoutIndex(t *testing.T) {
	r := rankings.MustNew(0, []rankings.Item{9, 4, 7})
	check := func() {
		t.Helper()
		for want, it := range []rankings.Item{9, 4, 7} {
			got, ok := r.Pos(it)
			if !ok || got != int32(want) {
				t.Errorf("Pos(%d) = %d,%v want %d,true", it, got, ok, want)
			}
		}
		if _, ok := r.Pos(42); ok {
			t.Error("Pos(42) found a missing item")
		}
	}
	check() // linear-scan path
	r.Index()
	check()   // indexed path
	r.Index() // idempotent
	check()
}

// TestFlatIndexAgreesWithScan: on random rankings the flat-index Pos
// path, the merged Footrule kernels and Domain all agree with the
// unindexed scan paths.
func TestFlatIndexAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(25)
		dom := k + rng.Intn(3*k)
		a := testutil.RandRanking(rng, 0, k, dom) // indexed
		b := testutil.RandRanking(rng, 1, k, dom) // indexed
		ua := rankings.MustNew(2, a.Items)        // scan path
		ub := rankings.MustNew(3, b.Items)
		if !a.Indexed() || ua.Indexed() {
			t.Fatal("Indexed() flag wrong")
		}
		for it := rankings.Item(0); it < rankings.Item(dom); it++ {
			gp, gok := a.Pos(it)
			wp, wok := ua.Pos(it)
			if gp != wp || gok != wok {
				t.Fatalf("Pos(%d): indexed %d,%v scan %d,%v (items %v)", it, gp, gok, wp, wok, a.Items)
			}
		}
		if got, want := rankings.Footrule(a, b), rankings.Footrule(ua, ub); got != want {
			t.Fatalf("merged footrule %d, scan %d (a=%v b=%v)", got, want, a, b)
		}
		bound := rng.Intn(rankings.MaxFootrule(k) + 1)
		gd, gok := rankings.FootruleWithin(a, b, bound)
		_, wok := rankings.FootruleWithin(ua, ub, bound)
		if gok != wok {
			t.Fatalf("merged within(%d) ok=%v, scan ok=%v", bound, gok, wok)
		}
		if gok && gd != rankings.Footrule(ua, ub) {
			t.Fatalf("merged within dist %d, want %d", gd, rankings.Footrule(ua, ub))
		}
		ga, wa := a.Domain(), ua.Domain()
		for i := range ga {
			if ga[i] != wa[i] {
				t.Fatalf("domain mismatch: %v vs %v", ga, wa)
			}
		}
	}
}

func TestOverlapAndDomain(t *testing.T) {
	a := rankings.MustNew(0, []rankings.Item{5, 3, 1})
	b := rankings.MustNew(1, []rankings.Item{1, 2, 5})
	if got := rankings.Overlap(a, b); got != 2 {
		t.Errorf("overlap = %d, want 2", got)
	}
	if got := a.Domain(); got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("domain = %v, want [1 3 5]", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := rankings.MustNew(0, []rankings.Item{1, 2, 3})
	c := a.Clone()
	c.Items[0] = 99
	if a.Items[0] != 1 {
		t.Error("clone shares item storage")
	}
}

func TestParseLineForms(t *testing.T) {
	cases := []struct {
		line   string
		id     int64
		wantID int64
		items  []rankings.Item
	}{
		{"2 5 4 3 1", 3, 3, []rankings.Item{2, 5, 4, 3, 1}},
		{"7: 2 5 4", 0, 7, []rankings.Item{2, 5, 4}},
		{"2,5,4", 1, 1, []rankings.Item{2, 5, 4}},
		{"  8:\t1, 2  3 ", 0, 8, []rankings.Item{1, 2, 3}},
	}
	for _, c := range cases {
		r, err := rankings.ParseLine(c.line, c.id)
		if err != nil {
			t.Errorf("ParseLine(%q): %v", c.line, err)
			continue
		}
		if r.ID != c.wantID {
			t.Errorf("ParseLine(%q): id %d, want %d", c.line, r.ID, c.wantID)
		}
		for i, it := range c.items {
			if r.Items[i] != it {
				t.Errorf("ParseLine(%q): items %v, want %v", c.line, r.Items, c.items)
				break
			}
		}
	}
	for _, bad := range []string{"", "a b c", "1 2 x", "y: 1 2", "1 1 2"} {
		if _, err := rankings.ParseLine(bad, 0); err == nil {
			t.Errorf("ParseLine(%q) accepted", bad)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := testutil.RandDataset(rng, 50, 8, 40)
	var buf bytes.Buffer
	if err := rankings.Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := rankings.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds) {
		t.Fatalf("round trip length %d, want %d", len(back), len(ds))
	}
	for i := range ds {
		if back[i].ID != ds[i].ID || !rankings.Equal(back[i], ds[i]) {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, back[i], ds[i])
		}
	}
}

func TestReadSkipsCommentsAndAssignsIDs(t *testing.T) {
	in := "# header\n1 2 3\n\n4 5 6\n"
	rs, err := rankings.Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].ID != 0 || rs[1].ID != 1 {
		t.Fatalf("got %v", rs)
	}
}

func TestReadRejectsBadLine(t *testing.T) {
	if _, err := rankings.Read(strings.NewReader("1 2\nbroken line\n")); err == nil {
		t.Error("bad line accepted")
	}
}
