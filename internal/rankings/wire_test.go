package rankings

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func TestRankingGobRoundTrip(t *testing.T) {
	indexed := MustNew(42, []Item{5, 3, 9, 1})
	indexed.Index()
	plain := MustNew(-7, []Item{2, 4})
	empty := &Ranking{ID: 0}

	for _, tc := range []struct {
		name string
		r    *Ranking
	}{
		{"indexed", indexed},
		{"unindexed", plain},
		{"empty", empty},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(tc.r); err != nil {
				t.Fatalf("encode: %v", err)
			}
			var got *Ranking
			if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.ID != tc.r.ID {
				t.Fatalf("id: got %d want %d", got.ID, tc.r.ID)
			}
			if !reflect.DeepEqual(got.Items, tc.r.Items) && !(len(got.Items) == 0 && len(tc.r.Items) == 0) {
				t.Fatalf("items: got %v want %v", got.Items, tc.r.Items)
			}
			if got.Indexed() != tc.r.Indexed() {
				t.Fatalf("indexed: got %v want %v", got.Indexed(), tc.r.Indexed())
			}
			if tc.r.Indexed() {
				// The derived state must be rebuilt, not merely flagged:
				// distances through the merged-pass kernel must agree.
				if d, want := Footrule(got, tc.r), 0; d != want {
					t.Fatalf("footrule after round trip: got %d want %d", d, want)
				}
				gotSig, gotPop := got.Signature()
				wantSig, wantPop := tc.r.Signature()
				if gotSig != wantSig || gotPop != wantPop {
					t.Fatalf("signature not rebuilt on decode")
				}
			}
		})
	}
}

func TestRankingGobInsideSlices(t *testing.T) {
	rs := []*Ranking{MustNew(1, []Item{1, 2, 3}), MustNew(2, []Item{3, 2, 1})}
	for _, r := range rs {
		r.Index()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
		t.Fatalf("encode slice: %v", err)
	}
	var got []*Ranking
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode slice: %v", err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 || !got[0].Indexed() {
		t.Fatalf("slice round trip mismatch: %v", got)
	}
}

func TestRankingGobDecodeRejectsCorrupt(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad version", []byte{99, 0, 0, 0}},
		{"truncated", []byte{wireRankingVersion, 4}},
		{"oversized length", []byte{wireRankingVersion, 0, 0, 200}},
	} {
		var r Ranking
		if err := r.GobDecode(tc.data); err == nil {
			t.Errorf("%s: corrupt payload accepted", tc.name)
		}
	}
}
