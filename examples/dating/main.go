// Dating-portal matchmaking — the paper's Table 1 motivation: members
// list their favorite movies as top-5 rankings; the portal matches
// members whose taste rankings are close under the top-k Footrule
// distance. This example shows the full round trip from named entities
// to item ids and back.
package main

import (
	"fmt"
	"log"
	"sort"

	"rankjoin"
)

// catalog interns movie titles as item ids.
type catalog struct {
	ids    map[string]rankjoin.Item
	titles []string
}

func newCatalog() *catalog { return &catalog{ids: map[string]rankjoin.Item{}} }

func (c *catalog) id(title string) rankjoin.Item {
	if id, ok := c.ids[title]; ok {
		return id
	}
	id := rankjoin.Item(len(c.titles))
	c.ids[title] = id
	c.titles = append(c.titles, title)
	return id
}

func main() {
	members := []struct {
		name   string
		movies []string
	}{
		// Table 1 of the paper: Alice and Chris share 4 of 5 favorites.
		{"Alice", []string{"Pulp Fiction", "E.T.", "Forrest Gump", "Indiana Jones", "Titanic"}},
		{"Bob", []string{"The Schindler List", "Lord of the Rings", "Avengers", "Indiana Jones", "E.T."}},
		{"Chris", []string{"Indiana Jones", "Pulp Fiction", "Forrest Gump", "E.T.", "Titanic"}},
		// A few more members around the same tastes.
		{"Dana", []string{"Pulp Fiction", "E.T.", "Forrest Gump", "Titanic", "Indiana Jones"}},
		{"Eve", []string{"Lord of the Rings", "The Schindler List", "Avengers", "E.T.", "Alien"}},
		{"Frank", []string{"Alien", "Blade Runner", "Dune", "Arrival", "Interstellar"}},
	}

	cat := newCatalog()
	names := make(map[int64]string)
	var rs []*rankjoin.Ranking
	for i, m := range members {
		items := make([]rankjoin.Item, len(m.movies))
		for j, title := range m.movies {
			items[j] = cat.id(title)
		}
		r, err := rankjoin.NewRanking(int64(i), items)
		if err != nil {
			log.Fatalf("member %s: %v", m.name, err)
		}
		names[r.ID] = m.name
		rs = append(rs, r)
	}

	// θ = 0.4: movie tastes only need to be broadly aligned for a date.
	res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCL, Theta: 0.4})
	if err != nil {
		log.Fatal(err)
	}

	type match struct {
		a, b string
		sim  float64
	}
	var matches []match
	for _, p := range res.Pairs {
		matches = append(matches, match{
			a:   names[p.A],
			b:   names[p.B],
			sim: 1 - float64(p.Dist)/float64(rankjoin.MaxDistance(5)),
		})
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].sim > matches[j].sim })

	fmt.Println("suggested dates (by taste similarity):")
	for _, m := range matches {
		fmt.Printf("  %-6s + %-6s  %.0f%% taste match\n", m.a, m.b, 100*m.sim)
	}
	if len(matches) == 0 {
		fmt.Println("  nobody matches — lower the threshold")
	}
}
