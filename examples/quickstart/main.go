// Quickstart: the smallest possible tour of the rankjoin API — build a
// few top-5 rankings, run the paper's CL join, and print every pair
// within the threshold. The data is Table 2 of the paper plus a few
// near-duplicates so the clustering phase has something to find.
package main

import (
	"fmt"
	"log"

	"rankjoin"
)

func main() {
	mk := func(id int64, items ...rankjoin.Item) *rankjoin.Ranking {
		r, err := rankjoin.NewRanking(id, items)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	rs := []*rankjoin.Ranking{
		mk(1, 2, 5, 4, 3, 1), // τ1 of Table 2
		mk(2, 1, 4, 5, 9, 0), // τ2
		mk(3, 0, 8, 5, 7, 3), // τ3
		mk(4, 2, 5, 4, 1, 3), // near τ1: bottom two swapped
		mk(5, 1, 4, 5, 9, 6), // near τ2: last item replaced
		mk(6, 5, 2, 4, 3, 1), // near τ1: top two swapped
	}

	res, err := rankjoin.Join(rs, rankjoin.Options{
		Algorithm: rankjoin.AlgCL, // the paper's clustering pipeline
		Theta:     0.25,           // normalized Footrule threshold
		Stats:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	k := rs[0].K()
	fmt.Printf("pairs within θ=0.25 (max distance %d):\n", rankjoin.MaxDistance(k))
	for _, p := range res.Pairs {
		fmt.Printf("  τ%d ~ τ%d  distance=%d (%.3f normalized)\n",
			p.A, p.B, p.Dist, float64(p.Dist)/float64(rankjoin.MaxDistance(k)))
	}
	fmt.Printf("\npipeline: %d cluster pairs, %d clusters, %d singletons, %d centroid pairs\n",
		res.CL.ClusterPairs, res.CL.Clusters, res.CL.Singletons, res.CL.CentroidPairs)
	fmt.Printf("engine:   %d records shuffled across %d tasks\n",
		res.Engine.ShuffleRecords, res.Engine.Tasks)
}
