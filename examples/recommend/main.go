// Recommender scenario — the paper's third motivation: customers are
// summarized by the top-k items they buy most; customers with similar
// purchase rankings receive each other's favorites as recommendations.
//
// The example also exercises the library's set-join extension (the
// paper's §8 outlook): alongside the rank-aware Footrule join it runs a
// Jaccard join over the unordered basket sets and shows where the two
// disagree — rank-awareness separates customers who buy the same items
// with very different intensity.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rankjoin"
)

const (
	k         = 10
	products  = 800
	customers = 120
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A few buyer archetypes; customers mix an archetype with
	// personal noise. Some pairs share the item SET but invert the
	// ranking (e.g. a reseller vs. a household buying the same goods
	// at opposite intensities).
	archetypes := make([][]rankjoin.Item, 8)
	for a := range archetypes {
		seen := map[rankjoin.Item]bool{}
		for len(archetypes[a]) < k {
			p := rankjoin.Item(rng.Intn(products))
			if !seen[p] {
				seen[p] = true
				archetypes[a] = append(archetypes[a], p)
			}
		}
	}

	var rs []*rankjoin.Ranking
	baskets := map[int64][]int32{}
	for c := 0; c < customers; c++ {
		arch := archetypes[rng.Intn(len(archetypes))]
		items := append([]rankjoin.Item(nil), arch...)
		switch {
		case rng.Float64() < 0.10: // inverted intensity: same set, reversed ranks
			for i, j := 0, len(items)-1; i < j; i, j = i+1, j-1 {
				items[i], items[j] = items[j], items[i]
			}
		default: // personal jitter
			for s := 0; s < rng.Intn(3); s++ {
				i := rng.Intn(k - 1)
				items[i], items[i+1] = items[i+1], items[i]
			}
		}
		r, err := rankjoin.NewRanking(int64(c), items)
		if err != nil {
			log.Fatal(err)
		}
		rs = append(rs, r)
		set := make([]int32, k)
		for i, it := range items {
			set[i] = int32(it)
		}
		baskets[int64(c)] = set
	}

	// Rank-aware similarity (Footrule, CL-P with auto-chosen δ).
	rankRes, err := rankjoin.Join(rs, rankjoin.Options{
		Algorithm: rankjoin.AlgCLP,
		Theta:     0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Set similarity (Jaccard ≥ 0.8) over the same baskets.
	setPairs, err := rankjoin.JoinSets(baskets, 0.8)
	if err != nil {
		log.Fatal(err)
	}

	rankKey := map[[2]int64]bool{}
	for _, p := range rankRes.Pairs {
		rankKey[[2]int64{p.A, p.B}] = true
	}
	agree, setOnly := 0, 0
	for _, sp := range setPairs {
		if rankKey[[2]int64{sp.A, sp.B}] {
			agree++
		} else {
			setOnly++
		}
	}

	fmt.Printf("customers: %d\n", customers)
	fmt.Printf("rank-aware matches (Footrule θ=0.25): %d pairs\n", len(rankRes.Pairs))
	fmt.Printf("set matches (Jaccard ≥ 0.8):          %d pairs\n", len(setPairs))
	fmt.Printf("  both agree:                         %d\n", agree)
	fmt.Printf("  set-only (same items, opposite intensity — a bad recommendation!): %d\n", setOnly)

	// A concrete recommendation: for the closest pair, suggest the
	// partner's top item that the customer does not already favor.
	if len(rankRes.Pairs) > 0 {
		best := rankRes.Pairs[0]
		for _, p := range rankRes.Pairs {
			if p.Dist < best.Dist {
				best = p
			}
		}
		a, b := rs[best.A], rs[best.B]
		fmt.Printf("\nclosest customers: %d and %d (distance %d)\n", a.ID, b.ID, best.Dist)
		for _, it := range b.Items {
			if !a.Contains(it) {
				fmt.Printf("recommend product %d to customer %d\n", it, a.ID)
				break
			}
		}
	}
}
