// Tracing: observe a join instead of just running it. An engine with a
// tracer attached records a span for every pipeline phase, shuffle,
// and per-partition task; Result carries the filter-effectiveness
// counters and the engine snapshot carries skew histograms. This
// program joins a small clustered dataset with CL, prints the span
// tree and the filter cascade tally, and (with -trace-out) exports the
// run as Chrome trace-event JSON for Perfetto / chrome://tracing.
//
// Usage:
//
//	go run ./examples/tracing [-trace-out trace.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"rankjoin"
)

func main() {
	traceOut := flag.String("trace-out", "", "write Chrome trace JSON to this file")
	flag.Parse()

	// A clustered dataset: 40 seed rankings, 4 near-duplicates each,
	// top-10 over a 200-item domain — enough structure for every CL
	// phase to do real work.
	rng := rand.New(rand.NewSource(42))
	domain := make([]rankjoin.Item, 200)
	for i := range domain {
		domain[i] = rankjoin.Item(i)
	}
	var rs []*rankjoin.Ranking
	id := int64(0)
	for s := 0; s < 40; s++ {
		rng.Shuffle(len(domain), func(i, j int) { domain[i], domain[j] = domain[j], domain[i] })
		base := append([]rankjoin.Item(nil), domain[:10]...)
		for c := 0; c < 4; c++ {
			items := append([]rankjoin.Item(nil), base...)
			// Perturb: swap a couple of adjacent positions per copy.
			for p := 0; p < c; p++ {
				i := rng.Intn(len(items) - 1)
				items[i], items[i+1] = items[i+1], items[i]
			}
			id++
			r, err := rankjoin.NewRanking(id, items)
			if err != nil {
				log.Fatal(err)
			}
			rs = append(rs, r)
		}
	}

	e := rankjoin.NewEngine(rankjoin.EngineConfig{})
	defer e.Close()
	tracer := rankjoin.NewTracer()
	e.SetTracer(tracer)

	res, err := e.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCL, Theta: 0.2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d rankings -> %d result pairs\n\n", len(rs), len(res.Pairs))

	fmt.Println("span tree (phases, shuffles, stages):")
	fmt.Print(tracer.TreeString(3, true))

	f := res.Filters
	fmt.Println("\nfilter cascade:")
	fmt.Printf("  candidates generated   %8d\n", f.Generated)
	fmt.Printf("  pruned by prefix       %8d\n", f.PrunedPrefix)
	fmt.Printf("  pruned by signature    %8d\n", f.PrunedSignature)
	fmt.Printf("  pruned by position     %8d\n", f.PrunedPosition)
	fmt.Printf("  pruned by triangle     %8d\n", f.PrunedTriangle)
	fmt.Printf("  accepted unverified    %8d\n", f.AcceptedUnverified)
	fmt.Printf("  verified               %8d\n", f.Verified)
	fmt.Printf("  emitted                %8d  (conserved: %v)\n", f.Emitted, f.Conserved())

	fmt.Println("\nskew histograms:")
	names := make([]string, 0, len(res.Engine.Histograms))
	for name := range res.Engine.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-28s %s\n", name, res.Engine.Histograms[name])
	}

	if *traceOut != "" {
		out, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s — open it in https://ui.perfetto.dev or chrome://tracing\n", *traceOut)
	}
}
