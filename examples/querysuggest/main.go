// Search-engine query grouping — the paper's second motivating use
// case: related queries are detected by comparing their top-10 result
// lists. Queries whose result rankings are close under the Footrule
// distance are suggestion candidates for each other.
//
// The example simulates a query log: a handful of "intents", each with
// a canonical result ranking over a shared document corpus; queries of
// the same intent retrieve gently perturbed versions of that ranking
// (ranking jitter between crawls), while unrelated intents retrieve
// disjoint documents.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rankjoin"
)

const (
	k         = 10   // result-list length
	corpus    = 5000 // document id space
	intents   = 40   // distinct information needs
	perIntent = 6    // query variants per intent
)

func main() {
	rng := rand.New(rand.NewSource(2020))

	queryText := make(map[int64]string)
	var rs []*rankjoin.Ranking
	var id int64
	for intent := 0; intent < intents; intent++ {
		// Canonical result list of this intent.
		base := make([]rankjoin.Item, 0, k)
		seen := map[rankjoin.Item]bool{}
		for len(base) < k {
			d := rankjoin.Item(rng.Intn(corpus))
			if !seen[d] {
				seen[d] = true
				base = append(base, d)
			}
		}
		for v := 0; v < perIntent; v++ {
			items := append([]rankjoin.Item(nil), base...)
			// Ranking jitter: a few adjacent swaps, occasionally a
			// fresh document enters the bottom of the list.
			for s := 0; s < rng.Intn(3); s++ {
				i := rng.Intn(k - 1)
				items[i], items[i+1] = items[i+1], items[i]
			}
			if rng.Float64() < 0.3 {
				items[k-1] = rankjoin.Item(rng.Intn(corpus))
				for dup := true; dup; {
					dup = false
					for _, d := range items[:k-1] {
						if d == items[k-1] {
							items[k-1] = rankjoin.Item(rng.Intn(corpus))
							dup = true
							break
						}
					}
				}
			}
			r, err := rankjoin.NewRanking(id, items)
			if err != nil {
				log.Fatal(err)
			}
			queryText[id] = fmt.Sprintf("intent%02d/q%d", intent, v)
			rs = append(rs, r)
			id++
		}
	}

	// CL with a small θ: result lists must agree closely before two
	// queries suggest each other.
	res, err := rankjoin.Join(rs, rankjoin.Options{
		Algorithm: rankjoin.AlgCL,
		Theta:     0.2,
		ThetaC:    0.03,
		Stats:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Union-find over similar pairs -> suggestion groups.
	parent := make(map[int64]int64)
	var find func(int64) int64
	find = func(x int64) int64 {
		if p, ok := parent[x]; ok && p != x {
			root := find(p)
			parent[x] = root
			return root
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	for _, p := range res.Pairs {
		ra, rb := find(p.A), find(p.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := map[int64][]string{}
	for _, r := range rs {
		groups[find(r.ID)] = append(groups[find(r.ID)], queryText[r.ID])
	}

	multi := 0
	for _, g := range groups {
		if len(g) > 1 {
			multi++
		}
	}
	fmt.Printf("%d queries -> %d similar pairs -> %d suggestion groups (showing 5):\n",
		len(rs), len(res.Pairs), multi)
	shown := 0
	for _, g := range groups {
		if len(g) < 2 || shown == 5 {
			continue
		}
		fmt.Printf("  group: %v\n", g)
		shown++
	}
	fmt.Printf("\nCL pipeline: %d clusters, %d singletons, joining reduced to %d centroid pairs\n",
		res.CL.Clusters, res.CL.Singletons, res.CL.CentroidPairs)
}
