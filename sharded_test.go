package rankjoin_test

import (
	"errors"
	"math/rand"
	"testing"

	"rankjoin"
	"rankjoin/internal/testutil"
)

// TestShardedIndexMatchesStaticIndex: the dynamic index must answer
// range queries exactly like the static one over the same data.
func TestShardedIndexMatchesStaticIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	rs := testutil.ClusteredDataset(rng, 20, 4, 8, 60)
	static, err := rankjoin.BuildIndex(rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	dyn := rankjoin.NewShardedIndex(rankjoin.ShardedIndexConfig{Shards: 4, PivotsPerShard: 4})
	for _, r := range rs {
		if err := dyn.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if dyn.Len() != len(rs) {
		t.Fatalf("Len = %d, want %d", dyn.Len(), len(rs))
	}
	const theta = 0.25
	for _, q := range rs {
		want, err := static.Search(q, theta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dyn.Search(q, theta)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: sharded %d hits, static %d", q.ID, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d hit %d: sharded %v, static %v", q.ID, i, got[i], want[i])
			}
		}
	}
}

func TestShardedIndexDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	rs := testutil.RandDataset(rng, 30, 6, 40)
	x := rankjoin.NewShardedIndex(rankjoin.ShardedIndexConfig{})

	// Empty index: searches answer empty rather than erroring, kNN of
	// a nil query is a typed error.
	if hits, err := x.Search(rs[0], 0.5); err != nil || len(hits) != 0 {
		t.Fatalf("empty search: %v, %v", hits, err)
	}
	if _, err := x.Search(nil, 0.5); !errors.Is(err, rankjoin.ErrNilQuery) {
		t.Fatalf("nil query: err = %v", err)
	}
	if _, err := x.Search(rs[0], 1.5); !errors.Is(err, rankjoin.ErrThetaRange) {
		t.Fatalf("bad theta: err = %v", err)
	}

	for _, r := range rs {
		if err := x.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// KNN with n > Len returns everything but the query, sorted.
	nn, err := x.KNN(rs[0], len(rs)+5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != len(rs)-1 {
		t.Fatalf("KNN returned %d, want %d", len(nn), len(rs)-1)
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatalf("KNN out of order at %d: %v", i, nn)
		}
	}
	// Deleting the nearest neighbor removes it from the results.
	nearest := nn[0].ID
	if ok, err := x.Delete(nearest); err != nil || !ok {
		t.Fatalf("Delete(%d) = %v, %v", nearest, ok, err)
	}
	nn2, err := x.KNN(rs[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range nn2 {
		if h.ID == nearest {
			t.Fatalf("deleted ranking %d still returned", nearest)
		}
	}
}
