package rankjoin_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"rankjoin"
	"rankjoin/internal/flow"
	"rankjoin/internal/testutil"
)

// memWorld is a minimal in-process flow.Exchanger: one buffered channel
// per (collective, src, dst). It proves the eight public join paths
// run unchanged in SPMD mode; the HTTP transport is internal/cluster's
// job and is certified separately against 50 rankcheck seeds.
type memWorld struct {
	n     int
	mu    sync.Mutex
	boxes map[string]chan []byte
}

func newMemWorld(n int) *memWorld { return &memWorld{n: n, boxes: make(map[string]chan []byte)} }

func (mw *memWorld) box(id int64, src, dst int) chan []byte {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	key := fmt.Sprintf("%d/%d/%d", id, src, dst)
	ch, ok := mw.boxes[key]
	if !ok {
		ch = make(chan []byte, 1)
		mw.boxes[key] = ch
	}
	return ch
}

type memExchanger struct {
	world *memWorld
	self  int
}

func (e *memExchanger) World() (int, int) { return e.self, e.world.n }

func (e *memExchanger) Alltoall(id int64, outbound [][]byte) ([][]byte, error) {
	for w := range outbound {
		if w != e.self {
			e.world.box(id, e.self, w) <- outbound[w]
		}
	}
	inbound := make([][]byte, e.world.n)
	inbound[e.self] = outbound[e.self]
	for w := range inbound {
		if w != e.self {
			inbound[w] = <-e.world.box(id, w, e.self)
		}
	}
	return inbound, nil
}

var _ flow.Exchanger = (*memExchanger)(nil)

func TestDistributedJoinIdenticalAcrossAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rs := testutil.ClusteredDataset(rng, 12, 14, 7, 400)
	algos := []rankjoin.Algorithm{
		rankjoin.AlgBruteForce, rankjoin.AlgVJ, rankjoin.AlgVJNL,
		rankjoin.AlgCL, rankjoin.AlgCLP, rankjoin.AlgVSMART,
		rankjoin.AlgClusterJoin, rankjoin.AlgFSJoin,
	}
	for _, alg := range algos {
		t.Run(alg.String(), func(t *testing.T) {
			opts := rankjoin.Options{Algorithm: alg, Theta: 0.3, Delta: 8, Partitions: 5}
			single, err := rankjoin.NewEngine(rankjoin.EngineConfig{Workers: 2}).Join(rs, opts)
			if err != nil {
				t.Fatalf("single-node join: %v", err)
			}

			const world = 3
			mw := newMemWorld(world)
			results := make([]*rankjoin.Result, world)
			errs := make([]error, world)
			var wg sync.WaitGroup
			for w := 0; w < world; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					eng := rankjoin.NewEngine(rankjoin.EngineConfig{
						Workers:  2,
						Exchange: &memExchanger{world: mw, self: w},
					})
					results[w], errs[w] = eng.Join(rs, opts)
				}(w)
			}
			wg.Wait()
			for w := 0; w < world; w++ {
				if errs[w] != nil {
					t.Fatalf("worker %d: %v", w, errs[w])
				}
				if !reflect.DeepEqual(results[w].Pairs, single.Pairs) {
					t.Fatalf("worker %d: %d pairs != single-node %d pairs",
						w, len(results[w].Pairs), len(single.Pairs))
				}
			}
		})
	}
}
