module rankjoin

go 1.24
