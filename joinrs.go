package rankjoin

import (
	"fmt"

	"rankjoin/internal/vj"
)

// JoinRS finds all pairs (r ∈ R, s ∈ S) of rankings from two datasets
// within normalized Footrule distance theta — the R-S counterpart of
// the self-join (e.g. matching this week's user rankings against last
// week's). The two datasets have independent id spaces: in each result
// pair, A is the R-side id and B the S-side id, and pairs are sorted by
// (A, B).
func (e *Engine) JoinRS(r, s []*Ranking, opts Options) (*Result, error) {
	if opts.Theta < 0 || opts.Theta > 1 {
		return nil, fmt.Errorf("rankjoin: theta %v out of [0,1]", opts.Theta)
	}
	// Options.Algorithm is ignored: R-S joins always run the VJ-style
	// prefix-filtered pipeline (the CL clustering pipeline is a
	// self-join construction). Delta still enables repartitioning.
	e.ctx.ResetMetrics()
	var st *vj.Stats
	if opts.Stats {
		st = &vj.Stats{}
	}
	pairs, err := vj.JoinRS(e.ctx, r, s, vj.Options{
		Theta:      opts.Theta,
		Partitions: opts.Partitions,
		Delta:      opts.Delta,
		Stats:      st,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Pairs: pairs, Algorithm: opts.Algorithm, Engine: e.ctx.Snapshot()}
	if st != nil {
		snap := st.Snapshot()
		res.Kernel = &snap
	}
	return res, nil
}

// JoinRS runs an R-S join on a fresh default engine; see Engine.JoinRS.
func JoinRS(r, s []*Ranking, opts Options) (*Result, error) {
	e := NewEngine(EngineConfig{})
	defer e.Close()
	return e.JoinRS(r, s, opts)
}
