package rankjoin

import (
	"fmt"

	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/vj"
)

// JoinRS finds all pairs (r ∈ R, s ∈ S) of rankings from two datasets
// within normalized Footrule distance theta — the R-S counterpart of
// the self-join (e.g. matching this week's user rankings against last
// week's). The two datasets have independent id spaces: in each result
// pair, A is the R-side id and B the S-side id, and pairs are sorted by
// (A, B).
//
// Not every algorithm defines an R-S join: the CL family's clustering
// pipeline and the related-work baselines are self-join constructions.
// Options.Algorithm therefore selects among:
//
//   - AlgCL (the zero value): the default — the prefix-filtered
//     iterator pipeline, i.e. the same execution as AlgVJNL;
//   - AlgVJ / AlgVJNL: the prefix-filtered pipeline (both run the
//     iterator kernel — there is no per-partition index to build for a
//     cross join, so the two requests execute identically);
//   - AlgBruteForce: the quadratic R×S scan, for oracles and testing.
//
// Anything else returns ErrSelfJoinOnly. Result.Algorithm always
// reports the algorithm actually executed (AlgVJNL for the pipeline,
// AlgBruteForce for the scan) — never an algorithm that did not run.
//
// All rankings of both datasets must share one length k
// (ErrMixedLengths) and ids must be unique within each dataset
// (ErrDuplicateID); the same id on both sides is fine — the id spaces
// are independent.
func (e *Engine) JoinRS(r, s []*Ranking, opts Options) (*Result, error) {
	if opts.Theta < 0 || opts.Theta > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrThetaRange, opts.Theta)
	}
	all := make([]*Ranking, 0, len(r)+len(s))
	all = append(all, r...)
	all = append(all, s...)
	if err := checkUniform(all); err != nil {
		return nil, err
	}
	if err := checkUniqueIDs(r); err != nil {
		return nil, fmt.Errorf("R side: %w", err)
	}
	if err := checkUniqueIDs(s); err != nil {
		return nil, fmt.Errorf("S side: %w", err)
	}

	executed := AlgVJNL
	switch opts.Algorithm {
	case AlgCL, AlgVJ, AlgVJNL:
		// The prefix-filtered pipeline below; AlgCL is accepted as the
		// package-wide default ("use the recommended algorithm"), not as
		// a request for the clustering pipeline.
	case AlgBruteForce:
		executed = AlgBruteForce
	case AlgCLP, AlgVSMART, AlgClusterJoin, AlgFSJoin:
		return nil, fmt.Errorf("%w: %v", ErrSelfJoinOnly, opts.Algorithm)
	default:
		return nil, fmt.Errorf("rankjoin: unknown algorithm %v", opts.Algorithm)
	}

	e.ctx.ResetMetrics()
	var pairs []Pair
	var err error
	var st *vj.Stats
	if executed == AlgBruteForce {
		pairs = bruteForceRS(e, r, s, opts.Theta)
	} else {
		if opts.Stats {
			st = &vj.Stats{}
		}
		pairs, err = vj.JoinRS(e.ctx, r, s, vj.Options{
			Theta:      opts.Theta,
			Partitions: opts.Partitions,
			Delta:      opts.Delta,
			Stats:      st,
		})
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Pairs: pairs, Algorithm: executed, Engine: e.ctx.Snapshot()}
	res.Filters = res.Engine.Filters
	if st != nil {
		snap := st.Snapshot()
		res.Kernel = &snap
	}
	return res, nil
}

// bruteForceRS verifies every (r, s) combination — the R-S oracle.
func bruteForceRS(e *Engine, r, s []*Ranking, theta float64) []Pair {
	if len(r) == 0 || len(s) == 0 {
		return nil
	}
	maxDist := rankings.Threshold(theta, r[0].K())
	var st ppjoin.Stats
	var pairs []Pair
	for _, a := range r {
		for _, b := range s {
			st.Candidates++
			st.Verified++
			if d, ok := rankings.FootruleWithin(a, b, maxDist); ok {
				st.Results++
				pairs = append(pairs, Pair{A: a.ID, B: b.ID, Dist: d})
			}
		}
	}
	e.ctx.Filters().Add(st.FilterDelta())
	rankings.SortPairs(pairs)
	return pairs
}

// JoinRS runs an R-S join on a fresh default engine; see Engine.JoinRS.
func JoinRS(r, s []*Ranking, opts Options) (*Result, error) {
	e := NewEngine(EngineConfig{})
	defer e.Close()
	return e.JoinRS(r, s, opts)
}
