package rankjoin

import (
	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
)

// Neighbor is one search hit from a ShardedIndex: the id of an indexed
// ranking and its (unnormalized) Footrule distance to the query.
type Neighbor = shard.Neighbor

// ShardedIndex is the dynamic counterpart of Index: a sharded metric
// index that supports Insert and Delete between queries and re-pivots
// itself in the background when churn erodes its pruning power. It is
// safe for concurrent use. This is the structure cmd/rankserved serves
// over HTTP; embed it directly for in-process serving.
//
// Unlike Index (built once over a fixed dataset), a ShardedIndex
// starts empty: the first Insert fixes the ranking length k, and later
// inserts and queries must match it.
type ShardedIndex struct {
	idx *shard.Index
}

// ShardedIndexConfig configures a ShardedIndex. The zero value is
// usable: 8 shards with 8 pivots each.
type ShardedIndexConfig struct {
	// Shards is the number of independently locked partitions.
	// More shards mean finer-grained write contention.
	Shards int
	// PivotsPerShard is the number of pivot rankings per shard; more
	// pivots prune better but cost more per insert and query.
	PivotsPerShard int
	// Seed drives pivot selection. The default of 0 is fine.
	Seed int64
}

// NewShardedIndex returns an empty dynamic index.
func NewShardedIndex(cfg ShardedIndexConfig) *ShardedIndex {
	return &ShardedIndex{idx: shard.New(shard.Config{
		Shards:         cfg.Shards,
		PivotsPerShard: cfg.PivotsPerShard,
		Seed:           cfg.Seed,
	})}
}

// Insert adds the ranking, replacing any previous ranking with the
// same id. The first insert fixes the index's ranking length.
func (x *ShardedIndex) Insert(r *Ranking) error { return x.idx.Insert(r) }

// Delete removes the ranking with the given id, reporting whether it
// was present. The error carries the durability barrier's verdict when
// a write-ahead log is attached to the index; without one it is always
// nil.
func (x *ShardedIndex) Delete(id int64) (bool, error) { return x.idx.Delete(id) }

// Len returns the number of indexed rankings.
func (x *ShardedIndex) Len() int { return x.idx.Len() }

// Search returns every indexed ranking within normalized Footrule
// distance theta of the query, as canonical pairs sorted by (distance,
// ids) — the same contract as Index.Search. When the query's id is
// indexed, that entry is excluded (so searching with an indexed
// ranking returns its neighbors, not itself).
func (x *ShardedIndex) Search(q *Ranking, theta float64) ([]Pair, error) {
	if q == nil {
		return nil, ErrNilQuery
	}
	if theta < 0 || theta > 1 {
		return nil, ErrThetaRange
	}
	k := x.idx.K()
	if k == 0 {
		return nil, nil
	}
	hits, err := x.idx.Search(q, rankings.Threshold(theta, k), q.ID)
	if err != nil {
		return nil, err
	}
	pairs := make([]Pair, len(hits))
	for i, h := range hits {
		pairs[i] = rankings.NewPair(q.ID, h.ID, h.Dist)
	}
	rankings.SortPairs(pairs)
	return pairs, nil
}

// KNN returns the n indexed rankings closest to the query in Footrule
// distance, ascending (ties broken by id), excluding the query's own
// id. Fewer than n are returned when the index is smaller.
func (x *ShardedIndex) KNN(q *Ranking, n int) ([]Neighbor, error) {
	if q == nil {
		return nil, ErrNilQuery
	}
	return x.idx.KNN(q, n, q.ID)
}
