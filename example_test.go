package rankjoin_test

import (
	"fmt"
	"log"

	"rankjoin"
)

// ExampleJoin runs the paper's CL pipeline over a handful of top-5
// rankings.
func ExampleJoin() {
	mk := func(id int64, items ...rankjoin.Item) *rankjoin.Ranking {
		r, err := rankjoin.NewRanking(id, items)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	rs := []*rankjoin.Ranking{
		mk(1, 2, 5, 4, 3, 1),
		mk(2, 1, 4, 5, 9, 0),
		mk(3, 2, 5, 4, 1, 3), // near-duplicate of τ1
	}
	res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCL, Theta: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("(%d,%d) distance %d\n", p.A, p.B, p.Dist)
	}
	// Output:
	// (1,3) distance 2
}

// ExampleEngine_SetTracer attaches a tracer to an engine and prints
// the span tree of one CL join: the root join span, the four phases of
// the paper's pipeline, and the final dedup stage. Depth is capped at
// the phase level (shuffles and per-partition tasks nest below it) and
// detail is off so the output is deterministic; pass a larger depth and
// withDetail=true to see durations and partition attributes, or export
// the same trace with WriteChromeTrace and load it in Perfetto.
func ExampleEngine_SetTracer() {
	mk := func(id int64, items ...rankjoin.Item) *rankjoin.Ranking {
		r, err := rankjoin.NewRanking(id, items)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	rs := []*rankjoin.Ranking{
		mk(1, 2, 5, 4, 3, 1),
		mk(2, 1, 4, 5, 9, 0),
		mk(3, 2, 5, 4, 1, 3),
	}
	e := rankjoin.NewEngine(rankjoin.EngineConfig{})
	defer e.Close()
	tracer := rankjoin.NewTracer()
	e.SetTracer(tracer)
	if _, err := e.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCL, Theta: 0.25}); err != nil {
		log.Fatal(err)
	}
	fmt.Print(tracer.TreeString(2, false))
	// Output:
	// join/CL
	//   cl/ordering
	//   cl/clustering
	//   cl/joining
	//   cl/expansion
	// join/dedup
}

// ExampleFootrule reproduces the distance computation of the paper's
// Table 2 (items ranked 0..k-1, missing items at rank k).
func ExampleFootrule() {
	t1, _ := rankjoin.NewRanking(1, []rankjoin.Item{2, 5, 4, 3, 1})
	t2, _ := rankjoin.NewRanking(2, []rankjoin.Item{1, 4, 5, 9, 0})
	fmt.Println(rankjoin.Footrule(t1, t2))
	fmt.Println(rankjoin.MaxDistance(5))
	// Output:
	// 16
	// 30
}

// ExampleJoinSets joins unordered token sets under Jaccard similarity —
// the paper's §8 outlook.
func ExampleJoinSets() {
	sets := map[int64][]int32{
		1: {10, 20, 30, 40},
		2: {10, 20, 30, 50},
		3: {70, 80, 90, 99},
	}
	pairs, err := rankjoin.JoinSets(sets, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("(%d,%d) similarity %.2f\n", p.A, p.B, p.Sim)
	}
	// Output:
	// (1,2) similarity 0.60
}

// ExampleBuildIndex answers similarity range queries without a full
// join.
func ExampleBuildIndex() {
	mk := func(id int64, items ...rankjoin.Item) *rankjoin.Ranking {
		r, _ := rankjoin.NewRanking(id, items)
		return r
	}
	rs := []*rankjoin.Ranking{
		mk(1, 1, 2, 3, 4, 5),
		mk(2, 1, 2, 3, 5, 4),
		mk(3, 9, 8, 7, 6, 0),
	}
	idx, err := rankjoin.BuildIndex(rs, 2)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := idx.Search(rs[0], 0.2)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("neighbor pair (%d,%d) at distance %d\n", h.A, h.B, h.Dist)
	}
	// Output:
	// neighbor pair (1,2) at distance 2
}

// ExampleJoinRS joins two datasets against each other — e.g. this
// week's rankings against last week's.
func ExampleJoinRS() {
	mk := func(id int64, items ...rankjoin.Item) *rankjoin.Ranking {
		r, _ := rankjoin.NewRanking(id, items)
		return r
	}
	thisWeek := []*rankjoin.Ranking{mk(1, 1, 2, 3, 4, 5)}
	lastWeek := []*rankjoin.Ranking{mk(1, 2, 1, 3, 4, 5), mk(2, 9, 8, 7, 6, 0)}
	res, _ := rankjoin.JoinRS(thisWeek, lastWeek, rankjoin.Options{Theta: 0.2})
	for _, p := range res.Pairs {
		fmt.Printf("R#%d ~ S#%d at distance %d\n", p.A, p.B, p.Dist)
	}
	// Output:
	// R#1 ~ S#1 at distance 2
}
