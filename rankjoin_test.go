package rankjoin_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"rankjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func sample(t *testing.T, seed int64, n, k, dom int) []*rankjoin.Ranking {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return testutil.ClusteredDataset(rng, n/4, 3, k, dom)
}

// TestAllAlgorithmsAgree: the public API's five algorithms return the
// same result set.
func TestAllAlgorithmsAgree(t *testing.T) {
	rs := sample(t, 1, 80, 10, 80)
	ref, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgBruteForce, Theta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Pairs) == 0 {
		t.Fatal("degenerate sample: no pairs")
	}
	for _, alg := range []rankjoin.Algorithm{
		rankjoin.AlgVJ, rankjoin.AlgVJNL, rankjoin.AlgCL, rankjoin.AlgCLP,
		rankjoin.AlgVSMART, rankjoin.AlgClusterJoin, rankjoin.AlgFSJoin,
	} {
		res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: alg, Theta: 0.25})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !rankings.SamePairs(res.Pairs, ref.Pairs) {
			t.Errorf("%v disagrees with brute force", alg)
		}
		if res.Algorithm != alg {
			t.Errorf("result algorithm = %v, want %v", res.Algorithm, alg)
		}
	}
}

func TestJoinValidation(t *testing.T) {
	rs := sample(t, 2, 20, 8, 60)
	if _, err := rankjoin.Join(rs, rankjoin.Options{Theta: -1}); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.Algorithm(99), Theta: 0.2}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	res, err := rankjoin.Join(nil, rankjoin.Options{Theta: 0.2})
	if err != nil || len(res.Pairs) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

func TestStatsExposed(t *testing.T) {
	rs := sample(t, 3, 80, 10, 80)
	res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCL, Theta: 0.3, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CL == nil || res.CL.Results != int64(len(res.Pairs)) {
		t.Errorf("CL stats missing or inconsistent: %v", res.CL)
	}
	if res.Engine.ShuffleRecords == 0 {
		t.Error("engine metrics empty")
	}

	res, err = rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgVJNL, Theta: 0.3, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel == nil || res.Kernel.Candidates == 0 {
		t.Errorf("VJ kernel stats missing: %v", res.Kernel)
	}
}

func TestEngineReuseAndSpill(t *testing.T) {
	rs := sample(t, 4, 60, 8, 60)
	e := rankjoin.NewEngine(rankjoin.EngineConfig{
		Workers: 2, SpillDir: t.TempDir(), SpillThreshold: 1,
	})
	defer e.Close()
	ref, err := rankjoin.Join(rs, rankjoin.Options{Theta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := e.Join(rs, rankjoin.Options{Theta: 0.25, Stats: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(res.Pairs, ref.Pairs) {
			t.Fatalf("spilling engine run %d diverged", i)
		}
		if res.Engine.SpilledRecords == 0 {
			t.Error("spill threshold 1 spilled nothing")
		}
	}
}

func TestNewRankingAndDistances(t *testing.T) {
	a, err := rankjoin.NewRanking(1, []rankjoin.Item{2, 5, 4, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rankjoin.NewRanking(2, []rankjoin.Item{1, 4, 5, 9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d := rankjoin.Footrule(a, b); d != 16 {
		t.Errorf("paper example distance %d, want 16", d)
	}
	if n := rankjoin.FootruleNorm(a, b); n != 16.0/30.0 {
		t.Errorf("normalized %v", n)
	}
	if rankjoin.MaxDistance(5) != 30 {
		t.Error("max distance")
	}
	if _, err := rankjoin.NewRanking(1, []rankjoin.Item{1, 1}); err == nil {
		t.Error("duplicate items accepted")
	}
}

func TestReadWriteRankings(t *testing.T) {
	in := "0: 1 2 3\n1: 3 2 1\n"
	rs, err := rankjoin.ReadRankings(strings.NewReader(in))
	if err != nil || len(rs) != 2 {
		t.Fatalf("%v %v", rs, err)
	}
	var buf bytes.Buffer
	if err := rankjoin.WriteRankings(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := rankjoin.ReadRankings(&buf)
	if err != nil || len(back) != 2 {
		t.Fatalf("round trip: %v %v", back, err)
	}
}

func TestSuggestDelta(t *testing.T) {
	rs := sample(t, 5, 100, 10, 100)
	d, err := rankjoin.SuggestDelta(rs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if d < 16 {
		t.Errorf("delta %d", d)
	}
	if d, err := rankjoin.SuggestDelta(nil, 0.3); err != nil || d != 16 {
		t.Errorf("empty dataset: delta %d err %v, want floor 16", d, err)
	}
	// Mixed ranking lengths would make the Equation 4 estimate
	// meaningless (prefix size keys off rs[0].K()); it must be a typed
	// error, not a silent nonsense δ.
	mixed := []*rankjoin.Ranking{
		mustRanking(t, 1, []rankjoin.Item{1, 2, 3}),
		mustRanking(t, 2, []rankjoin.Item{1, 2, 3, 4, 5}),
	}
	if _, err := rankjoin.SuggestDelta(mixed, 0.3); !errors.Is(err, rankjoin.ErrMixedLengths) {
		t.Errorf("mixed-k SuggestDelta: err %v, want ErrMixedLengths", err)
	}
	if _, err := rankjoin.SuggestDelta(rs, 1.5); !errors.Is(err, rankjoin.ErrThetaRange) {
		t.Errorf("theta out of range: err %v, want ErrThetaRange", err)
	}
}

func mustRanking(t *testing.T, id int64, items []rankjoin.Item) *rankjoin.Ranking {
	t.Helper()
	r, err := rankjoin.NewRanking(id, items)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestJoinSets(t *testing.T) {
	sets := map[int64][]int32{
		1: {1, 2, 3, 4},
		2: {1, 2, 3, 5},
		3: {7, 8, 9},
	}
	pairs, err := rankjoin.JoinSets(sets, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != 1 || pairs[0].B != 2 {
		t.Errorf("set join = %v", pairs)
	}
	if sim := rankjoin.JaccardSim([]int32{1, 2}, []int32{2, 3}); sim != 1.0/3.0 {
		t.Errorf("jaccard %v", sim)
	}
	if _, err := rankjoin.JoinSets(sets, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

// TestAutoDeltaCLP: CL-P with Delta 0 derives δ from Equation 4 and
// still returns exact results.
func TestAutoDeltaCLP(t *testing.T) {
	rs := sample(t, 6, 100, 10, 90)
	ref, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgBruteForce, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCLP, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(res.Pairs, ref.Pairs) {
		t.Error("auto-delta CL-P diverged")
	}
}
