package rankjoin

import "rankjoin/internal/dataset"

// GenOptions parameterizes the synthetic top-k ranking generator used
// throughout the paper-reproduction experiments: Zipf-skewed item
// popularity plus a controlled density of near-duplicate rankings.
type GenOptions = dataset.GenConfig

// Profile is a named dataset family (skew, vocabulary growth,
// near-duplicate density).
type Profile = dataset.Profile

// DBLPLike approximates the paper's preprocessed DBLP benchmark
// (moderate skew, fewer near-duplicates).
var DBLPLike = dataset.DBLPLike

// ORKULike approximates the paper's preprocessed ORKU benchmark
// (heavier skew, more near-duplicates).
var ORKULike = dataset.ORKULike

// Generate draws a synthetic dataset; see GenOptions.
func Generate(opts GenOptions) ([]*Ranking, error) { return dataset.Generate(opts) }

// ScaleDataset grows a dataset ×times with the paper's §7 method: the
// item domain stays fixed and the join result grows approximately
// linearly with the dataset.
func ScaleDataset(rs []*Ranking, times, domain int) []*Ranking {
	return dataset.Scale(rs, times, domain)
}

// TopKFromRecords applies the paper's preprocessing to raw token
// records: duplicate records removed, records shorter than k dropped,
// the first k distinct tokens becoming the ranking.
func TopKFromRecords(records [][]Item, k int) []*Ranking { return dataset.TopK(records, k) }
